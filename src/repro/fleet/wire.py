"""``repro.fleet.wire`` — the process fleet: shards as real OS processes.

:class:`WireFleet` is the parent-side runtime that turns the fleet's
share-nothing shard model into actual operating-system processes.  Each
shard is a :mod:`~repro.net.wire.node_runner` child — a classic
single-shard platform behind a socket listener — and the parent holds
one frontend :class:`~repro.net.wire.WireTransport` through which every
request, result and control verb travels as a framed, CRC-checked,
codec-validated packet.  Nothing shares memory: if it isn't on the
wire, the shard never sees it.

The API mirrors the in-process fleet harness where it can::

    with WireFleet(shards=2, composites=4) as fleet:
        calls = [fleet.submit(name) for name in fleet.composites]
        results = [call.result(timeout=30.0) for call in calls]

and adds the process-level fault operations the durability story needs:
``kill_shard`` (SIGKILL, no teardown) and ``recover_shard`` (respawn
with ``recover=True`` so the child replays its WAL, then resolve or
resubmit the calls the dead incarnation held).  Resubmission is
at-least-once: a request the WAL had *completed* is answered from the
recovered result pool without re-running, one it had merely *started*
runs again — the same contract the in-process recovery path documents.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import TransportError
from repro.kernel.envelopes import Execute, ExecuteResult
from repro.net.message import Message
from repro.net.wire.codec import control_body
from repro.net.wire.node_runner import (
    CONTROL_ENDPOINT,
    WIRE_PING,
    WIRE_RESULTS,
    WIRE_SHUTDOWN,
    WIRE_SNAPSHOT,
    WIRE_STATS,
    WireNodeHandle,
    WireNodeSpec,
    spawn_wire_node,
)
from repro.net.wire.transport import WireTransport

FRONTEND_NODE = "wirefront"
COLLECTOR_ENDPOINT = "collector"


class WireCall:
    """One in-flight request to a shard process (wall-clock future)."""

    def __init__(self, request_key: str, composite: str, operation: str,
                 arguments: "Dict[str, Any]",
                 timeout_ms: "Optional[float]") -> None:
        self.request_key = request_key
        self.composite = composite
        self.operation = operation
        self.arguments = arguments
        self.timeout_ms = timeout_ms
        self._event = threading.Event()
        self._result: "Optional[ExecuteResult]" = None
        #: Wall-clock marks (``time.perf_counter()``), set at submit and
        #: first resolution — the socket benchmark's latency source.
        self.submitted_at: "Optional[float]" = None
        self.resolved_at: "Optional[float]" = None

    def done(self) -> bool:
        return self._event.is_set()

    def peek(self) -> "Optional[ExecuteResult]":
        return self._result

    def result(self, timeout: "Optional[float]" = 30.0) -> ExecuteResult:
        """Block (wall-clock seconds) until the shard answered."""
        if not self._event.wait(timeout):
            raise TransportError(
                f"wire call {self.request_key!r} ({self.composite}."
                f"{self.operation}) got no result within {timeout}s"
            )
        assert self._result is not None
        return self._result

    @property
    def wall_latency_s(self) -> "Optional[float]":
        if self.submitted_at is None or self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted_at

    def _resolve(self, result: ExecuteResult) -> None:
        if self._event.is_set():
            return  # duplicate (resubmit race); first answer wins
        self.resolved_at = time.perf_counter()
        self._result = result
        self._event.set()


class WireFleet:
    """A fleet whose shards are real processes; see module docstring."""

    def __init__(
        self,
        shards: int = 2,
        composites: int = 4,
        tasks: int = 3,
        seed: int = 0,
        processing_ms: float = 1.0,
        service_latency_ms: float = 5.0,
        listen_host: str = "127.0.0.1",
        batch_max: int = 16,
        durability_dir: str = "",
        fsync: str = "interval",
        start_timeout: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ValueError("a wire fleet needs at least one shard")
        self.shards = shards
        self.durability_dir = durability_dir
        self.start_timeout = start_timeout
        self.specs: "List[WireNodeSpec]" = [
            WireNodeSpec(
                shard_id=shard_id,
                shards_total=shards,
                composites=composites,
                tasks=tasks,
                seed=seed,
                processing_ms=processing_ms,
                service_latency_ms=service_latency_ms,
                listen_host=listen_host,
                batch_max=batch_max,
                durability_dir=(
                    os.path.join(durability_dir, f"shard-{shard_id}")
                    if durability_dir else ""
                ),
                fsync=fsync,
            )
            for shard_id in range(shards)
        ]
        #: composite name -> owning shard id (the pinned fleet spread).
        self.placement: "Dict[str, int]" = {}
        for spec in self.specs:
            for name in spec.composite_names():
                self.placement[name] = spec.shard_id
        self.composites: "List[str]" = sorted(self.placement)
        self.nodes: "Dict[int, WireNodeHandle]" = {}
        self.frontend: "Optional[WireTransport]" = None
        self._started = False
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._pending: "Dict[str, WireCall]" = {}
        #: control token -> (event, one-slot reply holder)
        self._control: "Dict[str, Tuple[threading.Event, List[Any]]]" = {}
        #: Requests resolved from a recovered shard's WAL instead of a
        #: live execution (diagnostics for the durability tests).
        self.recovered_from_wal = 0
        self.resubmitted = 0

    # Lifecycle --------------------------------------------------------------

    def start(self) -> "WireFleet":
        if self._started:
            return self
        self.frontend = WireTransport(batch_max=16)
        node = self.frontend.add_node(FRONTEND_NODE)
        node.register(COLLECTOR_ENDPOINT, self._collect)
        self.frontend.start()
        try:
            for spec in self.specs:
                handle = spawn_wire_node(
                    spec, start_timeout=self.start_timeout
                )
                self.nodes[spec.shard_id] = handle
                self.frontend.register_peer(handle.node_id, handle.address)
            self._started = True
        except BaseException:
            self._teardown(graceful=False)
            raise
        return self

    def stop(self, graceful: bool = True) -> None:
        """Shut the fleet down; with ``graceful`` the shards drain and
        exit 0 (the leak fixture's definition of clean)."""
        self._teardown(graceful=graceful)

    def _teardown(self, graceful: bool) -> None:
        if graceful and self.frontend is not None:
            for shard_id, handle in sorted(self.nodes.items()):
                if not handle.alive:
                    continue
                try:
                    self.call_control(shard_id, WIRE_SHUTDOWN, timeout=10.0)
                except TransportError:
                    pass  # fall through to the hard join below
        for handle in self.nodes.values():
            if handle.alive:
                code = handle.join(timeout=10.0)
                if code is None:
                    handle.kill()
        self.nodes.clear()
        self._started = False
        if self.frontend is not None:
            self.frontend.stop()
            self.frontend = None
        # Unblock anyone still waiting: the fleet is gone.
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            control = list(self._control.values())
            self._control.clear()
        for call in pending:
            call._resolve(ExecuteResult(
                status="fault", fault="wire fleet stopped",
                request_key=call.request_key,
            ))
        for event, _holder in control:
            event.set()

    def __enter__(self) -> "WireFleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # Submission -------------------------------------------------------------

    def shard_of(self, composite: str) -> int:
        shard = self.placement.get(composite)
        if shard is None:
            raise TransportError(
                f"unknown composite {composite!r}; fleet has "
                f"{self.composites}"
            )
        return shard

    def submit(
        self,
        composite: str,
        operation: str = "run",
        arguments: "Optional[Mapping[str, Any]]" = None,
        timeout_ms: "Optional[float]" = None,
    ) -> WireCall:
        """Send one ``Execute`` to the owning shard process."""
        if not self._started or self.frontend is None:
            raise TransportError("WireFleet.submit before start()")
        shard = self.shard_of(composite)
        request_key = f"wf-{next(self._sequence):06d}"
        call = WireCall(request_key, composite, operation,
                        dict(arguments or {}), timeout_ms)
        with self._lock:
            self._pending[request_key] = call
        call.submitted_at = time.perf_counter()
        self._send_execute(shard, call)
        return call

    def _send_execute(self, shard: int, call: WireCall) -> None:
        assert self.frontend is not None
        envelope = Execute(
            operation=call.operation,
            arguments=call.arguments,
            request_key=call.request_key,
            timeout_ms=call.timeout_ms,
        )
        self.frontend.send(Message(
            kind=Execute.KIND,
            source=FRONTEND_NODE,
            source_endpoint=COLLECTOR_ENDPOINT,
            target=self.nodes[shard].node_id,
            target_endpoint=call.composite,
            body=envelope.to_body(),
        ))

    # Control plane ----------------------------------------------------------

    def call_control(
        self, shard_id: int, verb: str, timeout: float = 10.0,
        **fields: Any,
    ) -> "Dict[str, Any]":
        """Round-trip one ``__wire_*__`` verb to a shard process."""
        if not self._started or self.frontend is None:
            raise TransportError("WireFleet control call before start()")
        handle = self.nodes.get(shard_id)
        if handle is None:
            raise TransportError(f"no shard {shard_id} in this fleet")
        token = f"ct-{next(self._sequence):06d}"
        event: "threading.Event" = threading.Event()
        holder: "List[Any]" = []
        with self._lock:
            self._control[token] = (event, holder)
        try:
            self.frontend.send(Message(
                kind=verb,
                source=FRONTEND_NODE,
                source_endpoint=COLLECTOR_ENDPOINT,
                target=handle.node_id,
                target_endpoint=CONTROL_ENDPOINT,
                body=control_body(token=token, **fields),
            ))
            if not event.wait(timeout):
                raise TransportError(
                    f"shard {shard_id} did not answer {verb} within "
                    f"{timeout}s"
                )
        finally:
            with self._lock:
                self._control.pop(token, None)
        if not holder:
            raise TransportError(
                f"shard {shard_id} went away during {verb}"
            )
        return holder[0]

    def ping(self, shard_id: int, timeout: float = 10.0) -> "Dict[str, Any]":
        return self.call_control(shard_id, WIRE_PING, timeout=timeout)

    def stats(self, timeout: float = 10.0) -> "Dict[int, Dict[str, Any]]":
        """Per-shard runtime stats (executions, wire counters, clock)."""
        return {
            shard_id: self.call_control(shard_id, WIRE_STATS,
                                        timeout=timeout)
            for shard_id, handle in sorted(self.nodes.items())
            if handle.alive
        }

    def snapshot_shard(
        self, shard_id: int, timeout: float = 30.0
    ) -> "Dict[str, Any]":
        """Ask one shard to take a durability snapshot at quiescence."""
        return self.call_control(shard_id, WIRE_SNAPSHOT, timeout=timeout)

    # Fault operations -------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard process — the honest crash: no flush, no
        goodbye, its socket just goes dead."""
        handle = self.nodes.get(shard_id)
        if handle is None:
            raise TransportError(f"no shard {shard_id} in this fleet")
        handle.kill()

    def recover_shard(
        self, shard_id: int, resubmit: bool = True
    ) -> "Dict[str, Any]":
        """Respawn a dead shard and reconcile its in-flight calls.

        The child replays its WAL before reporting ready.  Calls whose
        request key the recovered incarnation already *completed* are
        resolved from its result pool (exactly-once for finished work);
        the rest are resubmitted when ``resubmit`` (at-least-once for
        work the crash interrupted).  Requires durability; refuses to
        respawn a live shard.
        """
        if not self.durability_dir:
            raise TransportError(
                "recover_shard needs a durability_dir-backed fleet"
            )
        old = self.nodes.get(shard_id)
        if old is None:
            raise TransportError(f"no shard {shard_id} in this fleet")
        if old.alive:
            raise TransportError(
                f"shard {shard_id} is still alive; kill_shard first"
            )
        spec = dataclasses.replace(self.specs[shard_id], recover=True)
        handle = spawn_wire_node(spec, start_timeout=self.start_timeout)
        self.nodes[shard_id] = handle
        assert self.frontend is not None
        self.frontend.register_peer(handle.node_id, handle.address)
        # Finished-before-crash work: answer from the recovered pool.
        recovered = self.call_control(
            shard_id, WIRE_RESULTS, timeout=30.0
        ).get("results", {})
        orphans = [
            call for call in self._pending_for(shard_id) if not call.done()
        ]
        for call in orphans:
            found = recovered.get(call.request_key)
            if found is not None:
                self.recovered_from_wal += 1
                call._resolve(ExecuteResult(
                    execution_id=found.get("execution_id", ""),
                    status=found.get("status", "fault"),
                    outputs=dict(found.get("outputs", {})),
                    fault=found.get("fault", ""),
                    request_key=call.request_key,
                ))
            elif resubmit:
                self.resubmitted += 1
                self._send_execute(shard_id, call)
        summary = dict(handle.recovery or {})
        summary["resolved_from_wal"] = self.recovered_from_wal
        summary["resubmitted"] = self.resubmitted
        return summary

    def _pending_for(self, shard_id: int) -> "List[WireCall]":
        with self._lock:
            return [
                call for call in self._pending.values()
                if self.placement.get(call.composite) == shard_id
            ]

    # Frontend delivery ------------------------------------------------------

    def _collect(self, message: Message) -> None:
        """Frontend endpoint: results resolve calls, control replies
        wake their waiters (runs on the frontend dispatcher thread)."""
        if message.kind == ExecuteResult.KIND:
            envelope = message.envelope
            if not isinstance(envelope, ExecuteResult):
                return
            with self._lock:
                call = self._pending.pop(envelope.request_key, None)
            if call is not None:
                call._resolve(envelope)
            return
        token = (message.body or {}).get("token", "")
        with self._lock:
            waiter = self._control.get(token)
        if waiter is not None:
            event, holder = waiter
            holder.append(dict(message.body or {}))
            event.set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        alive = sum(1 for h in self.nodes.values() if h.alive)
        return (
            f"<WireFleet {alive}/{self.shards} shards alive, "
            f"{len(self.composites)} composites>"
        )
