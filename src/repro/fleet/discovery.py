"""Fleet discovery: shard-local UDDI registries behind the engine API.

Every shard runs its own full :class:`~repro.discovery.engine.\
ServiceDiscoveryEngine` (UDDI registry + WSDL resolver + SOAP), so the
publish/search/locate machinery is exactly the single-platform code —
sharded, not reimplemented.  Two classes sit on top:

* :class:`FleetRegistry` — the control-plane view over the per-shard
  :class:`~repro.discovery.registry.UddiRegistry` instances: a combined
  generation counter for cache tokens and per-shard access for tools.
* :class:`FleetDiscovery` — the engine-shaped facade the platform
  exposes.  ``publish`` routes to the shard that actually hosts the
  service; ``search`` fans out and merges; ``locate`` tries the
  consistent-hash home shard first and falls back to a cross-shard
  fan-out, with one fleet-level
  :class:`~repro.perf.cache.LocateCache` (generation + TTL
  invalidated) layered over all shards so repeated locates — including
  fan-out resolutions — are O(1).
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.discovery.engine import SearchResult, ServiceListing
from repro.discovery.registry import UddiRegistry
from repro.exceptions import DiscoveryError
from repro.perf.cache import LocateCache
from repro.runtime.protocol import ResolvedBinding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.runtime import FleetRuntime


class FleetRegistry:
    """Control-plane view over the shard-local UDDI registries."""

    def __init__(self, registries: "List[UddiRegistry]") -> None:
        self._registries = list(registries)

    @property
    def generation(self) -> int:
        """Fleet-wide publish/unpublish counter (sum over shards)."""
        return sum(r.generation for r in self._registries)

    def registry_of(self, position: int) -> UddiRegistry:
        return self._registries[position]

    def replace(self, position: int, registry: UddiRegistry) -> None:
        """Swap one shard's registry (kill: empty; recover: rebuilt)."""
        self._registries[position] = registry

    def __len__(self) -> int:
        return len(self._registries)


class FleetDiscovery:
    """The discovery-engine surface of a sharded platform."""

    def __init__(self, fleet: "FleetRuntime") -> None:
        self.fleet = fleet
        self.registry = FleetRegistry(
            [shard.engine.registry for shard in fleet.shards]
        )
        perf = fleet.platform_config.perf
        #: The fleet-level locate cache (``None`` when disabled).  The
        #: per-shard engine caches are disabled, so this is the only
        #: cache layer — one entry per service fleet-wide, invalidated
        #: by *any* shard's registry/directory generation bump.
        self.locate_cache: Optional[LocateCache] = (
            LocateCache(
                size=perf.locate_cache_size,
                ttl_ms=perf.locate_cache_ttl_ms,
                now=fleet.scheduler.now_ms,
                events=fleet.perf_events,
            )
            if perf.locate_cache_size > 0 else None
        )
        # Unlike the single-shard engine cache, this one is reachable
        # from every shard's pump thread at once (open-loop harnesses
        # submit by name from scheduled callbacks), and LocateCache's
        # check-then-delete is not atomic — serialise all access.
        self._cache_lock = threading.Lock()

    # Shard routing ----------------------------------------------------------

    def _engine_for(self, service_name: str):
        """The engine of the shard hosting ``service_name`` (deployed)."""
        shard_id = self.fleet.directory.shard_of(service_name)
        return self.fleet.shard(shard_id).engine

    def replace_shard_registry(
        self, shard_id: int, registry: UddiRegistry
    ) -> None:
        """Swap the registry view of one shard after a kill/recover."""
        positions = {
            sid: position
            for position, sid in enumerate(self.fleet.shard_map.shard_ids)
        }
        self.registry.replace(positions[shard_id], registry)

    # Publish flow -----------------------------------------------------------

    def publish(
        self,
        description,
        category: str = "",
        contact: str = "",
    ) -> ServiceListing:
        """Publish on the shard that hosts the deployed service.

        The shard's own engine enforces the deployed-before-published
        rule against its shard-local directory, exactly as on a
        single-shard platform.
        """
        return self._engine_for(description.name).publish(
            description, category=category, contact=contact
        )

    def unpublish(self, service_name: str) -> None:
        """Unpublish wherever the service is found (home shard first)."""
        for engine in self._engines_home_first(service_name):
            try:
                engine.unpublish(service_name)
                return
            except DiscoveryError:
                continue
        raise DiscoveryError(
            f"service {service_name!r} is not published on any shard"
        )

    # Search flow ------------------------------------------------------------

    def search(
        self,
        provider: str = "",
        service_name: str = "",
        operation: str = "",
    ) -> SearchResult:
        """Fan the query out over every shard and merge the results."""
        merged = SearchResult()
        seen_providers = set()
        for shard in self.fleet.shards:
            result = shard.engine.search(
                provider=provider,
                service_name=service_name,
                operation=operation,
            )
            for name in result.providers:
                if name not in seen_providers:
                    seen_providers.add(name)
                    merged.providers.append(name)
            merged.listings.extend(result.listings)
        return merged

    def service_detail(self, service_name: str) -> ServiceListing:
        """Detail view from whichever shard has the service published."""
        for engine in self._engines_home_first(service_name):
            try:
                return engine.service_detail(service_name)
            except DiscoveryError:
                continue
        raise DiscoveryError(
            f"service {service_name!r} is not published on any shard"
        )

    def fetch_wsdl(self, service_name: str):
        for engine in self._engines_home_first(service_name):
            try:
                return engine.fetch_wsdl(service_name)
            except DiscoveryError:
                continue
        raise DiscoveryError(
            f"service {service_name!r} has no WSDL on any shard"
        )

    # Locate flow ------------------------------------------------------------

    def _engines_home_first(self, service_name: str):
        """Every *live* shard engine, the consistent-hash home first.

        A killed shard simply drops out of the iteration — its services
        are unreachable until ``recover_shard`` swaps the slice back in.
        """
        home = self.fleet.shard_map.shard_for(service_name)
        home_slice = self.fleet._by_id.get(home)
        if home_slice is not None:
            yield home_slice.engine
        for shard in self.fleet.shards:
            if shard.shard_id != home:
                yield shard.engine

    def _generation_token(self) -> "Tuple[int, int]":
        """The invalidation token fleet-level cache entries live under.

        Combines every shard's registry and directory generations, so
        churn anywhere in the fleet re-misses — the same guarantee the
        single-shard token gives, widened to the fleet.
        """
        return (self.registry.generation, self.fleet.directory.generation)

    def locate(self, service_name: str) -> ResolvedBinding:
        """Resolve a published service, fanning out across shards.

        The home shard answers directly in the common case (placement
        and lookup hash the same name).  A service published on another
        shard — explicit shard override at deployment — is found by the
        fan-out; either way the resolution is cached fleet-level under
        the combined generation token, so repeated locates skip both
        the fan-out and the SOAP round trips.
        """
        token = self._generation_token()
        if self.locate_cache is not None:
            with self._cache_lock:
                cached = self.locate_cache.get(service_name, token)
            if cached is not None:
                return cached
        binding: Optional[ResolvedBinding] = None
        for engine in self._engines_home_first(service_name):
            try:
                binding = engine.locate(service_name)
                break
            except DiscoveryError:
                continue
        if binding is None:
            raise DiscoveryError(
                f"service {service_name!r} is not published on any of "
                f"{len(self.fleet.shards)} shard(s)"
            )
        if self.locate_cache is not None:
            # Filled under the token observed before the fan-out: a
            # concurrent mutation between read and fill re-misses.
            with self._cache_lock:
                self.locate_cache.put(service_name, binding, token)
        return binding

    def invalidate_locates(
        self, service_name: Optional[str] = None, reason: str = ""
    ) -> None:
        """Flush fleet-level ``locate()`` entries (one name, or all).

        The hook community-membership listeners call — churn that never
        passes through a registry or directory generation.
        """
        if self.locate_cache is not None:
            with self._cache_lock:
                self.locate_cache.invalidate(service_name, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FleetDiscovery over {len(self.fleet.shards)} shards>"
