"""Consistent hashing of services and communities onto shards.

A :class:`ShardMap` answers exactly one question — *which shard owns
this name?* — in a way that is

* **deterministic** across processes and platforms (SHA-256, no
  ``hash()`` randomisation),
* **balanced** (each shard contributes many virtual nodes to the ring,
  so key ownership splits near-evenly), and
* **stable under membership changes**: adding or removing one shard
  only moves the keys that fall into the ring arcs that shard owned —
  roughly ``1/n`` of the key space — while every other key keeps its
  shard.  That stability is what lets a fleet grow without re-homing
  (and re-deploying) the whole platform.

The map hashes *placement keys*, which default to service names; the
fleet deployer passes an explicit affinity key when a composite and its
component services must land on the same shard (shards are
share-nothing: coordination messages never cross a shard boundary).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def _ring_hash(value: str) -> int:
    """Position of ``value`` on the ring (stable across processes)."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """A consistent-hash ring mapping placement keys to shard ids.

    Construct with a shard count (ids ``0..n-1``) or an explicit id
    sequence; derive changed memberships with :meth:`with_shard` /
    :meth:`without_shard` (maps are immutable once built).
    """

    def __init__(
        self,
        shards: "int | Sequence[int]",
        virtual_nodes: int = 64,
    ) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("a fleet needs at least one shard")
            shard_ids: Tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(shards)
            if not shard_ids:
                raise ValueError("a fleet needs at least one shard")
            if len(set(shard_ids)) != len(shard_ids):
                raise ValueError(f"duplicate shard ids in {shard_ids!r}")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shard_ids = shard_ids
        self.virtual_nodes = virtual_nodes
        points: "List[Tuple[int, int]]" = []
        for shard_id in shard_ids:
            for replica in range(virtual_nodes):
                points.append(
                    (_ring_hash(f"shard:{shard_id}:vn:{replica}"), shard_id)
                )
        # Ties between distinct shards at the same ring position are
        # broken by shard id, so iteration order never matters.
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    # Lookup -----------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: first ring point at/after its hash."""
        position = _ring_hash(f"key:{key}")
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._points):  # wrap around the ring
            index = 0
        return self._points[index][1]

    def assignment(self, keys: "Sequence[str]") -> "Dict[str, int]":
        """Map every key to its shard (bulk :meth:`shard_for`)."""
        return {key: self.shard_for(key) for key in keys}

    def spread(self, keys: "Sequence[str]") -> "Dict[int, int]":
        """How many of ``keys`` land on each shard (balance diagnostic)."""
        counts: Dict[int, int] = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    # Membership changes -----------------------------------------------------

    def with_shard(self, shard_id: int) -> "ShardMap":
        """A new map with ``shard_id`` added to the membership."""
        if shard_id in self.shard_ids:
            raise ValueError(f"shard {shard_id!r} is already a member")
        return ShardMap(self.shard_ids + (shard_id,), self.virtual_nodes)

    def without_shard(self, shard_id: int) -> "ShardMap":
        """A new map with ``shard_id`` removed from the membership."""
        if shard_id not in self.shard_ids:
            raise ValueError(f"shard {shard_id!r} is not a member")
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        return ShardMap(remaining, self.virtual_nodes)

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardMap {len(self.shard_ids)} shards x "
            f"{self.virtual_nodes} vnodes>"
        )
