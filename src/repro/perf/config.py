"""Declarative performance knobs of the platform fast path.

A :class:`PerfConfig` travels on :class:`~repro.api.PlatformConfig` and
controls the three fast-path layers introduced by ``repro.perf``:

* **compiled routing plans** — flatten every routing table into an
  immutable per-coordinator dispatch structure at deploy time,
* **indexed discovery** — the TTL+generation-invalidated ``locate()``
  cache in front of the UDDI registry's inverted indexes,
* **transport batching** — coalesced delivery windows on the simulated
  transport and queue-drain batching on the threaded one.

Every knob has an "off" position that restores the seed behaviour, which
is what the CLAIM-FASTPATH benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerfConfig:
    """Tuning knobs of the ``repro.perf`` fast path.

    The defaults enable the always-safe optimisations (plan compilation
    and the generation-checked locate cache) and leave delivery batching
    off, because a coalescing window trades a bounded amount of latency
    for fewer delivery events and should be an explicit choice.
    """

    #: Compile each operation's routing tables into shared, immutable
    #: per-coordinator dispatch structures at deploy time.  ``False``
    #: restores the seed path where every coordinator re-derives its
    #: row partitions and peer endpoint names on each firing.
    compile_plans: bool = True
    #: Maximum entries of the ``locate()`` cache (LRU).  ``0`` disables
    #: the cache entirely — every locate round-trips through SOAP/UDDI.
    locate_cache_size: int = 256
    #: Time-to-live of a cache entry in transport-clock milliseconds.
    #: ``0`` (or negative) means entries never expire by age and are
    #: invalidated only by registry/directory generation bumps and
    #: membership-change notifications.
    locate_cache_ttl_ms: float = 60_000.0
    #: Coalescing window of the simulated transport, in virtual
    #: milliseconds: messages arriving at the same host within the
    #: window are delivered in one flush event.  ``0`` disables
    #: batching (one delivery event per message, the seed behaviour).
    batch_window_ms: float = 0.0
    #: Maximum messages carried by one flush (both transports).  On the
    #: threaded transport this is the queue-drain cap: a dispatcher
    #: wakeup delivers up to this many already-queued messages.
    batch_max_messages: int = 64
    #: Zero-copy in-proc dispatch: a send whose target actor is started
    #: on the same :class:`~repro.kernel.ActorKernel` carries its typed
    #: envelope instead of an encoded body, skipping the codec round
    #: trip; the body stays available lazily (stats/WAL/observers see
    #: the identical encoding).  Off by default so the wire format is
    #: exercised everywhere unless explicitly opted in; fleet shards
    #: each have their own kernel, so cross-shard traffic always
    #: encodes regardless.
    zero_copy_local: bool = False

    def __post_init__(self) -> None:
        if self.locate_cache_size < 0:
            raise ValueError("locate_cache_size must be >= 0")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.batch_max_messages < 1:
            raise ValueError("batch_max_messages must be >= 1")

    @classmethod
    def disabled(cls) -> "PerfConfig":
        """The seed path: no plan compilation, no cache, no batching."""
        return cls(
            compile_plans=False,
            locate_cache_size=0,
            locate_cache_ttl_ms=0.0,
            batch_window_ms=0.0,
            batch_max_messages=1,
            zero_copy_local=False,
        )
