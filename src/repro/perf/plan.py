"""Routing-plan compilation: the deploy-time dispatch fast path.

The paper's core claim is that all control-flow reasoning happens *once*,
at deployment time, so coordinators "do not need to implement any complex
scheduling algorithm" at runtime.  The seed coordinator honoured that for
the *decisions* (they come from the routing table) but still re-derived
the decision *structures* on every hot-path step: partitioning
postprocessing rows into immediate/event sets per firing, rebuilding the
expected-edge list per join notification, and re-rendering each peer's
endpoint name per notify.

This module finishes the job: :func:`compile_routing_plan` flattens one
operation's placed routing tables into an immutable
:class:`CompiledRoutingPlan` of per-coordinator
:class:`CoordinatorDispatch` structures — row partitions, event→row maps,
join edge tuples, compiled guard/action/input expressions and interned
peer endpoint strings — built once by the
:class:`~repro.deployment.Deployer` and shared by every execution.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import RoutingError
from repro.expr import CompiledExpression, FunctionRegistry
from repro.routing.tables import FiringMode, PostprocessingRow, RoutingTable
from repro.runtime.protocol import coordinator_endpoint


@dataclass(frozen=True)
class CoordinatorDispatch:
    """The immutable dispatch structure of one coordinator.

    Everything a :class:`~repro.runtime.coordinator.Coordinator` consults
    per notification/firing/signal, precomputed once:

    * ``expected_edges`` — the join's expected edge ids (ALL mode),
    * ``immediate_rows`` / ``event_rows`` — the postprocessing partition
      the seed path rebuilt per firing,
    * ``rows_by_event`` / ``consumed_events`` — signal routing without a
      row scan,
    * ``notify_targets`` — per edge, the peer's ``(host, endpoint)``
      with the endpoint name rendered and interned at compile time,
    * ``guards`` / ``actions`` / ``input_exprs`` — compiled expressions,
      shared instead of re-compiled per coordinator instance.
    """

    node_id: str
    expects_all: bool
    expected_edges: "Tuple[str, ...]"
    immediate_rows: "Tuple[PostprocessingRow, ...]"
    event_rows: "Tuple[PostprocessingRow, ...]"
    rows_by_event: "Mapping[str, Tuple[PostprocessingRow, ...]]"
    consumed_events: "frozenset[str]"
    #: edge_id -> (target_host or "", interned endpoint name).  An empty
    #: host means "same host as the sender" (unplaced tables).
    notify_targets: "Mapping[str, Tuple[str, str]]"
    guards: "Mapping[str, Optional[CompiledExpression]]"
    actions: "Mapping[str, Tuple[Tuple[str, CompiledExpression], ...]]"
    input_exprs: "Mapping[str, CompiledExpression]"


def compile_dispatch(
    table: RoutingTable,
    composite: str,
    operation: str,
    registry: Optional[FunctionRegistry] = None,
) -> CoordinatorDispatch:
    """Compile one routing table into its dispatch structure."""
    immediate = tuple(
        row for row in table.postprocessing.rows if not row.event
    )
    event_rows = tuple(
        row for row in table.postprocessing.rows if row.event
    )
    rows_by_event: Dict[str, Tuple[PostprocessingRow, ...]] = {}
    for row in event_rows:
        rows_by_event[row.event] = rows_by_event.get(row.event, ()) + (row,)

    notify_targets: Dict[str, Tuple[str, str]] = {}
    guards: Dict[str, Optional[CompiledExpression]] = {}
    actions: Dict[str, Tuple[Tuple[str, CompiledExpression], ...]] = {}
    for row in table.postprocessing.rows:
        notify_targets[row.edge_id] = (
            sys.intern(row.target_host) if row.target_host else "",
            sys.intern(coordinator_endpoint(
                composite, operation, row.target_node
            )),
        )
        if row.fire_always or row.guard.strip() in ("", "true"):
            guards[row.edge_id] = None
        else:
            guards[row.edge_id] = CompiledExpression(row.guard, registry)
        actions[row.edge_id] = tuple(
            (action.target, CompiledExpression(action.expression, registry))
            for action in row.actions
        )

    input_exprs: Dict[str, CompiledExpression] = {}
    if table.binding is not None:
        for parameter, expr in table.binding.input_mapping.items():
            input_exprs[parameter] = CompiledExpression(expr, registry)

    return CoordinatorDispatch(
        node_id=table.node_id,
        expects_all=table.precondition.mode is FiringMode.ALL,
        expected_edges=tuple(
            entry.edge_id for entry in table.precondition.entries
        ),
        immediate_rows=immediate,
        event_rows=event_rows,
        rows_by_event=rows_by_event,
        consumed_events=frozenset(rows_by_event),
        notify_targets=notify_targets,
        guards=guards,
        actions=actions,
        input_exprs=input_exprs,
    )


@dataclass(frozen=True)
class CompiledRoutingPlan:
    """One operation's routing tables, compiled for dispatch.

    Built once at deploy time and shared across executions; the deployer
    stores it on the :class:`~repro.deployment.CompositeDeployment` so
    tooling can inspect exactly what the coordinators run from.
    """

    composite: str
    operation: str
    dispatches: "Mapping[str, CoordinatorDispatch]"

    def dispatch_for(self, node_id: str) -> CoordinatorDispatch:
        dispatch = self.dispatches.get(node_id)
        if dispatch is None:
            raise RoutingError(
                f"plan for {self.composite}.{self.operation} has no "
                f"coordinator {node_id!r}"
            )
        return dispatch

    def statistics(self) -> "Dict[str, int]":
        """Plan-shape numbers (used by docs and the fastpath benchmark)."""
        dispatches = list(self.dispatches.values())
        return {
            "coordinators": len(dispatches),
            "immediate_rows": sum(len(d.immediate_rows) for d in dispatches),
            "event_rows": sum(len(d.event_rows) for d in dispatches),
            "join_coordinators": sum(1 for d in dispatches if d.expects_all),
            "compiled_guards": sum(
                1 for d in dispatches
                for g in d.guards.values() if g is not None
            ),
            "interned_endpoints": len({
                endpoint
                for d in dispatches
                for _, endpoint in d.notify_targets.values()
            }),
        }

    def describe(self) -> str:
        """Human-readable plan summary (the deployer's console output)."""
        stats = self.statistics()
        lines = [
            f"compiled plan {self.composite}.{self.operation}: "
            f"{stats['coordinators']} coordinators",
            f"  rows: {stats['immediate_rows']} immediate, "
            f"{stats['event_rows']} event-consuming",
            f"  guards compiled: {stats['compiled_guards']}, "
            f"peer endpoints interned: {stats['interned_endpoints']}",
        ]
        return "\n".join(lines)


def compile_routing_plan(
    tables: "Mapping[str, RoutingTable]",
    composite: str,
    operation: str,
    registry: Optional[FunctionRegistry] = None,
) -> CompiledRoutingPlan:
    """Compile every coordinator's dispatch for one operation."""
    return CompiledRoutingPlan(
        composite=composite,
        operation=operation,
        dispatches={
            node_id: compile_dispatch(table, composite, operation, registry)
            for node_id, table in tables.items()
        },
    )
