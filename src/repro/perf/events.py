"""Performance event records: the audit trail of fast-path decisions.

Mirrors :mod:`repro.resilience.events` for the perf subsystem: every
cache decision the discovery fast path takes — a ``locate()`` served
from cache, a miss that fell through to SOAP/UDDI, an invalidation
caused by registry churn or community membership change — is recorded
here, so tests and operators can verify *why* a lookup was (or was not)
fast.  The log is bounded and append-only;
:class:`~repro.monitoring.tracer.ExecutionTracer` exposes it next to
the per-execution message timelines.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, List, Optional


class PerfEventKinds:
    """Vocabulary of performance events."""

    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    CACHE_STALE = "cache_stale"          # generation or TTL invalidated
    CACHE_INVALIDATE = "cache_invalidate"  # explicit flush (churn)
    CACHE_EVICT = "cache_evict"          # LRU capacity pressure


@dataclass(frozen=True)
class PerfEvent:
    """One recorded fast-path decision."""

    time_ms: float
    kind: str      # one of :class:`PerfEventKinds`
    subject: str   # the service name (or cache) the decision is about
    detail: str = ""


class PerfEventLog:
    """Bounded, append-only log of :class:`PerfEvent` records."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._events: "Deque[PerfEvent]" = deque(maxlen=maxlen)

    def record(
        self, time_ms: float, kind: str, subject: str, detail: str = ""
    ) -> PerfEvent:
        event = PerfEvent(time_ms=time_ms, kind=kind,
                          subject=subject, detail=detail)
        self._events.append(event)
        return event

    def events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> "List[PerfEvent]":
        """Events in record order, optionally filtered."""
        return [
            e for e in self._events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        ]

    def counts(self) -> Counter:
        """Event counts by kind (the cache dashboard numbers)."""
        return Counter(e.kind for e in self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
