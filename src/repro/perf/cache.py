"""The ``locate()`` cache: TTL + generation invalidation, LRU bounded.

``locate`` is the hottest discovery call — every execution that targets a
service by name resolves it first, and the seed path pays three SOAP/XML
round trips per resolution.  This cache serves repeated locates in O(1)
while staying *provably* fresh:

* every entry stores the **generation token** (registry generation,
  directory generation) observed when it was filled; a lookup whose
  current token differs sees the entry discarded — any publish,
  unpublish, redeploy or directory churn invalidates immediately,
* an optional **TTL** (on the transport clock) bounds the lifetime of
  entries even when no generation signal arrives (belt and braces for
  out-of-process registries),
* **explicit invalidation** (:meth:`LocateCache.invalidate`) handles
  churn that does not pass through the registry, e.g. community
  membership changes, and
* capacity is bounded by LRU eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.perf.events import PerfEventKinds, PerfEventLog


@dataclass
class CacheStats:
    """Counters of one cache instance (reset with the cache)."""

    hits: int = 0
    misses: int = 0
    stale: int = 0          # dropped on generation mismatch or TTL expiry
    invalidations: int = 0  # entries removed by explicit invalidation
    evictions: int = 0      # entries removed by LRU capacity pressure

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    value: Any
    token: "Tuple[int, ...]"
    filled_at_ms: float


class LocateCache:
    """A generation-checked, TTL-bounded, LRU-evicting lookup cache."""

    def __init__(
        self,
        size: int,
        ttl_ms: float,
        now: "Callable[[], float]",
        events: Optional[PerfEventLog] = None,
    ) -> None:
        if size < 1:
            raise ValueError("LocateCache size must be >= 1; use no cache "
                             "instead of a zero-sized one")
        self.size = size
        self.ttl_ms = ttl_ms
        self._now = now
        self._events = events
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def _record(self, kind: str, subject: str, detail: str = "") -> None:
        if self._events is not None:
            self._events.record(self._now(), kind, subject, detail)

    def get(self, key: str, token: "Tuple[int, ...]") -> Optional[Any]:
        """The cached value, or ``None`` on miss/stale.

        ``token`` is the caller's *current* generation tuple; an entry
        filled under a different token is stale and dropped on sight.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._record(PerfEventKinds.CACHE_MISS, key)
            return None
        if entry.token != token:
            del self._entries[key]
            self.stats.stale += 1
            self.stats.misses += 1
            self._record(PerfEventKinds.CACHE_STALE, key,
                         "generation changed")
            return None
        if self.ttl_ms > 0 and self._now() - entry.filled_at_ms > self.ttl_ms:
            del self._entries[key]
            self.stats.stale += 1
            self.stats.misses += 1
            self._record(PerfEventKinds.CACHE_STALE, key, "ttl expired")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._record(PerfEventKinds.CACHE_HIT, key)
        return entry.value

    def put(self, key: str, value: Any, token: "Tuple[int, ...]") -> None:
        """Fill (or refresh) an entry under the caller's current token."""
        self._entries[key] = _Entry(
            value=value, token=token, filled_at_ms=self._now()
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.size:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._record(PerfEventKinds.CACHE_EVICT, evicted)

    def invalidate(
        self, key: Optional[str] = None, reason: str = ""
    ) -> int:
        """Drop one entry (or all of them); returns how many were dropped."""
        if key is not None:
            dropped = 1 if self._entries.pop(key, None) is not None else 0
        else:
            dropped = len(self._entries)
            self._entries.clear()
        if dropped:
            self.stats.invalidations += dropped
            self._record(PerfEventKinds.CACHE_INVALIDATE,
                         key or "*", reason)
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
