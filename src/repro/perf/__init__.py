"""``repro.perf`` — the platform's compiled fast path.

The ROADMAP's north star is "as fast as the hardware allows" under heavy
traffic; this package is the layer that gets the hot paths out of the way
of that goal.  It compiles what the seed re-derived per request and
indexes what it scanned:

* :class:`CompiledRoutingPlan` / :class:`CoordinatorDispatch` /
  :func:`compile_routing_plan` — deploy-time flattening of routing
  tables into immutable per-coordinator dispatch structures (row
  partitions, join edge sets, interned peer endpoints, shared compiled
  guard/action expressions), consumed by
  :class:`~repro.runtime.Coordinator`,
* :class:`LocateCache` / :class:`CacheStats` — the TTL +
  generation-invalidated cache behind
  :meth:`~repro.discovery.ServiceDiscoveryEngine.locate`,
* :class:`PerfConfig` — the knobs a
  :class:`~repro.api.PlatformConfig` carries (plan compilation, cache
  size/TTL, transport batch window),
* :class:`PerfEventLog` / :class:`PerfEvent` — the cache audit trail
  surfaced through the execution tracer.

Design notes, invalidation rules and tuning guidance live in
``docs/PERF.md``; the measured claims live in
``benchmarks/results/CLAIM-FASTPATH.txt``.
"""

from repro.perf.cache import CacheStats, LocateCache
from repro.perf.config import PerfConfig
from repro.perf.events import PerfEvent, PerfEventKinds, PerfEventLog
from repro.perf.plan import (
    CompiledRoutingPlan,
    CoordinatorDispatch,
    compile_dispatch,
    compile_routing_plan,
)

__all__ = [
    "CacheStats",
    "CompiledRoutingPlan",
    "CoordinatorDispatch",
    "LocateCache",
    "PerfConfig",
    "PerfEvent",
    "PerfEventKinds",
    "PerfEventLog",
    "compile_dispatch",
    "compile_routing_plan",
]
