"""Per-shard durability bundle (:class:`ShardDurability`).

One instance owns everything durable about one shard — or about a
whole classic platform, which recovery-wise is just a one-shard fleet:
the WAL segment store, the snapshot store, the effect ledger, the
deployment journal, and the kernel middleware that taps deliveries
into the log.  The bundle outlives the runtime it is attached to: a
crash throws the kernel/transport away, recovery builds fresh ones and
re-attaches the same bundle.

The deployment journal is deliberately in-memory: it models reloading
code and topology from deployment descriptors, which real systems keep
in a control plane, not in the data-plane WAL.  What *is* on disk with
real ``fsync`` is everything the paper's data plane produces: envelope
deliveries, provider effects, snapshots.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.config import DurabilityConfig
from repro.durability.dedup import EffectLedger
from repro.durability.segments import SegmentStore
from repro.durability.snapshot import SnapshotStore, capture_state, quiescent
from repro.durability.wal import DurabilityMiddleware, WriteAheadLog
from repro.exceptions import DurabilityError


class DeploymentJournal:
    """Ordered record of every deployment, replayed to rebuild a shard.

    Entries hold the *live* service/community/composite objects — the
    same ones the original deployment used — so stateful service
    handlers (counters, inventories) keep their accumulated state
    across incarnations, exactly like real code reloaded from a
    descriptor against a persistent backing store.
    """

    def __init__(self) -> None:
        self._entries: "List[Tuple[str, Tuple[Any, ...]]]" = []

    def record_elementary(self, service, host: str, rng_state) -> None:
        self._entries.append(("elementary", (service, host, rng_state)))

    def record_community(
        self, community, host: str, kwargs: "Dict[str, Any]"
    ) -> None:
        self._entries.append(("community", (community, host, dict(kwargs))))

    def record_composite(
        self, composite, host: str, kwargs: "Dict[str, Any]"
    ) -> None:
        self._entries.append(("composite", (composite, host, dict(kwargs))))

    def record_publish(self, description, category: str, contact: str) -> None:
        self._entries.append(("publish", (description, category, contact)))

    def redeploy(self, deployer, engine) -> int:
        """Replay every entry against a fresh deployer/engine."""
        for kind, payload in self._entries:
            if kind == "elementary":
                service, host, rng_state = payload
                rng = random.Random(0)
                rng.setstate(rng_state)
                deployer.deploy_elementary(service, host, rng=rng)
            elif kind == "community":
                community, host, kwargs = payload
                deployer.deploy_community(community, host, **kwargs)
            elif kind == "composite":
                composite, host, kwargs = payload
                deployer.deploy_composite(composite, host, **kwargs)
            elif kind == "publish":
                description, category, contact = payload
                engine.publish(description, category=category,
                               contact=contact)
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class ShardDurability:
    """WAL + snapshots + effect ledger + journal for one shard."""

    def __init__(
        self, config: DurabilityConfig, shard_id: "Optional[int]" = None
    ) -> None:
        self.config = config
        self.shard_id = shard_id
        os.makedirs(config.dir, exist_ok=True)
        self.store = SegmentStore(
            os.path.join(config.dir, "wal"),
            fsync=config.fsync,
            fsync_interval_records=config.fsync_interval_records,
            segment_max_bytes=config.segment_max_bytes,
        )
        self.wal = WriteAheadLog(self.store)
        self.snapshots = SnapshotStore(
            os.path.join(config.dir, "snapshots"), keep=config.snapshot_keep
        )
        self.effects = EffectLedger(wal=self.wal)
        self.journal = DeploymentJournal()
        self.middleware = DurabilityMiddleware(self.wal)
        self.crashed = False
        self.recovering = False
        # Attached runtime (replaced wholesale on recovery).
        self.transport = None
        self.kernel = None
        self.deployer = None
        self.engine = None

    # Wiring ----------------------------------------------------------------

    def attach(self, transport, kernel, deployer, engine) -> "ShardDurability":
        """Hook this bundle into a (fresh or original) runtime."""
        self.transport = transport
        self.kernel = kernel
        self.deployer = deployer
        self.engine = engine
        kernel.add_middleware(self.middleware)
        deployer.durability = self
        if engine is not None:
            engine.on_publish = self._on_publish
        self.crashed = False
        return self

    def _on_publish(self, description, category: str, contact: str) -> None:
        if not self.recovering:
            self.journal.record_publish(description, category, contact)

    # Snapshots -------------------------------------------------------------

    def quiescent(self) -> "Tuple[bool, str]":
        return quiescent(self.transport, self.kernel)

    def take_snapshot(self) -> int:
        """Snapshot at a quiescent barrier and truncate the WAL."""
        ok, reason = self.quiescent()
        if not ok:
            raise DurabilityError(
                f"cannot snapshot a non-quiescent shard: {reason}"
            )
        directory = getattr(self.deployer, "directory", None)
        registry = getattr(self.engine, "registry", None)
        state = capture_state(
            self.kernel, self.effects,
            directory=directory, registry=registry,
        )
        snapshot_id = self.snapshots.take(state)
        # The snapshot is durable (fsynced before rename); everything in
        # the log is now re-derivable from it.
        self.wal.truncate()
        return snapshot_id

    # Lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Force the WAL tail durable regardless of fsync policy."""
        self.wal.sync()

    def crash(self) -> int:
        """Kill the shard: drop the unsynced WAL tail and all in-memory
        durability state.  Returns the number of records lost."""
        lost = self.wal.crash()
        self.effects.clear()
        self.crashed = True
        return lost

    def begin_recovery(self) -> None:
        """Suspend logging while the journal/snapshot/replay rebuild runs."""
        self.crashed = False
        self.recovering = True
        self.wal.suspended = True
        self.effects.suspended = True

    def finish_recovery(self) -> None:
        """Resume logging and persist effects re-discovered during replay."""
        self.recovering = False
        self.wal.suspended = False
        self.effects.suspended = False
        self.effects.flush_pending()

    @property
    def suspended(self) -> bool:
        """Whether journal/log recording is currently off."""
        return self.recovering or self.crashed
