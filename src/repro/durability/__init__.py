"""``repro.durability`` — write-ahead logging, snapshots and recovery.

The platform scales out (``repro.fleet``) and self-heals around live
failures (``repro.resilience``), but a killed shard used to lose every
in-flight composition.  This package is the missing database half:

* :mod:`~repro.durability.segments` — CRC/length-framed log segments
  with an explicit fsync policy (``always``/``interval``/``never``),
* :mod:`~repro.durability.wal` — the write-ahead log of kernel
  envelopes, tapped at the single mailbox choke point through an
  :class:`~repro.kernel.middleware.ActorMiddleware` so the logged
  order *is* the execution order,
* :mod:`~repro.durability.snapshot` — per-shard snapshots at quiescent
  barriers, with log truncation,
* :mod:`~repro.durability.dedup` — the effect ledger giving provider
  invocations exactly-once semantics across a crash, correlated by the
  ``(execution_id, invocation_id)`` pair riding the PR 1 request-key
  machinery,
* :mod:`~repro.durability.replay` — deterministic replay: rebuild a
  killed shard, re-deliver the log, swallow regenerated duplicates,
  resume mid-composition,
* :mod:`~repro.durability.runtime` — :class:`ShardDurability`, the
  per-shard (or per-platform) bundle the config wires in.

Wired through :attr:`repro.api.PlatformConfig.durability`: the classic
platform gains ``platform.durability`` + :func:`recover_platform`; the
fleet gains ``kill_shard()``/``recover_shard()`` on its runtime.
"""

from repro.durability.config import DurabilityConfig, FSYNC_POLICIES
from repro.durability.dedup import EffectLedger, canonical_send_key
from repro.durability.replay import (
    ReplayReport,
    SendGate,
    recover_attached,
    recover_platform,
)
from repro.durability.runtime import DeploymentJournal, ShardDurability
from repro.durability.segments import (
    SegmentStore,
    SegmentWriter,
    read_segment,
)
from repro.durability.snapshot import SnapshotStore, capture_state
from repro.durability.wal import DurabilityMiddleware, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "FSYNC_POLICIES",
    "EffectLedger",
    "canonical_send_key",
    "ReplayReport",
    "SendGate",
    "recover_attached",
    "recover_platform",
    "DeploymentJournal",
    "ShardDurability",
    "SegmentStore",
    "SegmentWriter",
    "read_segment",
    "SnapshotStore",
    "capture_state",
    "DurabilityMiddleware",
    "WriteAheadLog",
]
