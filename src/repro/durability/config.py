"""Durability configuration (:class:`DurabilityConfig`).

Frozen, like :class:`repro.fleet.config.FleetConfig`: the knobs are
decided before the platform is built, and recovery re-derives the same
paths from the same config, so mutation mid-run would only create
aliasing bugs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.exceptions import DurabilityError

#: Supported fsync policies for the WAL segment writer.
#:
#: ``always``   — write+flush+fsync every record (crash loses nothing),
#: ``interval`` — fsync every ``fsync_interval_records`` records (crash
#:                loses at most one interval's tail),
#: ``never``    — fsync only on clean close/segment roll (crash loses
#:                everything since the last roll).
FSYNC_POLICIES = ("always", "interval", "never")


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how hard to persist the write-ahead log and snapshots.

    ``dir`` is the root directory; each shard of a fleet gets its own
    ``shard-<id>/`` subdirectory (see :meth:`for_shard`) holding a
    ``wal/`` segment directory and a ``snapshots/`` directory.
    """

    dir: str
    fsync: str = "interval"
    fsync_interval_records: int = 64
    segment_max_bytes: int = 1 << 20
    snapshot_keep: int = 2

    def __post_init__(self) -> None:
        if not self.dir:
            raise DurabilityError("DurabilityConfig.dir must be a path")
        if self.fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {self.fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.fsync_interval_records < 1:
            raise DurabilityError(
                f"fsync_interval_records must be >= 1, got "
                f"{self.fsync_interval_records}"
            )
        if self.segment_max_bytes < 1024:
            raise DurabilityError(
                f"segment_max_bytes must be >= 1024, got "
                f"{self.segment_max_bytes}"
            )
        if self.snapshot_keep < 1:
            raise DurabilityError(
                f"snapshot_keep must be >= 1, got {self.snapshot_keep}"
            )

    def for_shard(self, shard_id: int) -> "DurabilityConfig":
        """The same config rooted at this shard's subdirectory."""
        return replace(self, dir=os.path.join(self.dir, f"shard-{shard_id}"))
