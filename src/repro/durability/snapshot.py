"""Per-shard snapshots with log truncation.

A snapshot captures the recoverable state of one shard (or one classic
platform) at a **quiescent barrier**: no live simulator events, no
running composite executions, no in-flight provider work.  Barriers
are where the WAL can be truncated — everything before the snapshot is
re-derivable from the snapshot alone, so replay after a crash is
``snapshot + (log since snapshot)`` instead of the whole history.

What is captured (JSON, checksummed, written atomically):

* per-service-wrapper RNG state and completed/faulted counters,
* per-composite-wrapper :class:`ExecutionRecord` table and execution
  counter,
* per-coordinator invocation and per-community delegation sequence
  positions (replay of the post-barrier log tail must re-generate the
  very same invocation ids),
* the effect ledger,
* an audit of the service directory and UDDI registry generation —
  *not* restored directly (the deployment journal rebuilds real actors
  and registry entries); the audit is verified after redeploy so a
  journal that drifted from reality fails loudly instead of replaying
  onto the wrong topology.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.dedup import EffectLedger
from repro.exceptions import DurabilityError
from repro.kernel.actor import ActorKernel
from repro.net.transport import Transport
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.composite_wrapper import (
    CompositeWrapperRuntime,
    ExecutionRecord,
)
from repro.runtime.coordinator import Coordinator
from repro.runtime.service_wrapper import ServiceWrapperRuntime

_SNAPSHOT_RE = re.compile(r"^snap-(\d{6})\.json$")


def _rng_state_to_json(state: "Tuple[Any, ...]") -> "List[Any]":
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_json(state: "List[Any]") -> "Tuple[Any, ...]":
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)


def _execution_suffix(execution_id: str) -> int:
    return int(execution_id.rsplit(":", 1)[1])


def quiescent(
    transport: Transport, kernel: ActorKernel
) -> "Tuple[bool, str]":
    """Whether this shard is at a snapshot barrier, and why not if not."""
    simulator = getattr(transport, "simulator", None)
    if simulator is not None:
        live = simulator.live_events()
        if live:
            return False, f"{live} live simulator event(s) pending"
    for actor in kernel.actors():
        if isinstance(actor, ServiceWrapperRuntime) and actor.in_flight:
            return False, (
                f"service {actor.service.name!r} has "
                f"{actor.in_flight} invocation(s) in flight"
            )
        if isinstance(actor, CompositeWrapperRuntime):
            running = actor.running_count()
            if running:
                return False, (
                    f"composite {actor.composite!r} has "
                    f"{running} running execution(s)"
                )
    return True, ""


def capture_state(
    kernel: ActorKernel,
    effects: EffectLedger,
    directory=None,
    registry=None,
) -> "Dict[str, Any]":
    """Serialize the recoverable shard state (call only when quiescent)."""
    wrappers = []
    composites = []
    # Invocation/delegation sequence positions: the WAL tail after this
    # barrier carries ids generated *past* these positions, so a
    # rebuilt coordinator must resume counting here or its re-issued
    # invokes will never match the logged ones during replay.
    sequences = []
    for actor in kernel.actors():
        if isinstance(actor, Coordinator) and actor.invocation_seq:
            sequences.append(
                [f"{actor.host}/{actor.endpoint_name}",
                 actor.invocation_seq]
            )
        elif isinstance(actor, CommunityWrapperRuntime):
            if actor.delegation_seq:
                sequences.append(
                    [f"{actor.host}/{actor.endpoint_name}",
                     actor.delegation_seq]
                )
        if isinstance(actor, ServiceWrapperRuntime):
            wrappers.append({
                "service": actor.service.name,
                "rng": _rng_state_to_json(actor.rng.getstate()),
                "completed": actor.completed,
                "faulted": actor.faulted,
            })
        elif isinstance(actor, CompositeWrapperRuntime):
            records = []
            max_suffix = 0
            for record in actor.records():
                max_suffix = max(
                    max_suffix, _execution_suffix(record.execution_id)
                )
                records.append({
                    "execution_id": record.execution_id,
                    "operation": record.operation,
                    "arguments": record.arguments,
                    "client_node": record.client_node,
                    "client_endpoint": record.client_endpoint,
                    "status": record.status,
                    "outputs": record.outputs,
                    "fault": record.fault,
                    "request_key": record.request_key,
                    "started_ms": record.started_ms,
                    "finished_ms": record.finished_ms,
                    # cancel_deadline is always None at a quiescent
                    # barrier (finished executions cleared it).
                })
            composites.append({
                "composite": actor.composite,
                "next_execution": max_suffix + 1,
                "records": records,
            })
    wrappers.sort(key=lambda entry: entry["service"])
    composites.sort(key=lambda entry: entry["composite"])
    sequences.sort()
    state: "Dict[str, Any]" = {
        "wrappers": wrappers,
        "composites": composites,
        "sequences": sequences,
        "effects": effects.export(),
        "audit": {
            "directory": sorted(directory.services()) if directory else [],
            "registry_generation": (
                registry.generation if registry is not None else 0
            ),
        },
    }
    return state


def restore_state(
    kernel: ActorKernel,
    effects: EffectLedger,
    state: "Dict[str, Any]",
    directory=None,
    registry=None,
) -> None:
    """Apply a captured state onto journal-rebuilt actors.

    The kernel must already hold the redeployed wrappers; this restores
    their mutable state and verifies the audit section.
    """
    # The journal may legitimately hold *more* than the snapshot saw —
    # deployments and publishes after the barrier replay from the
    # journal too — so the audit checks containment, not equality:
    # everything the snapshot captured must have been rebuilt.
    audit = state.get("audit", {})
    expected_services = audit.get("directory", [])
    if directory is not None and expected_services:
        missing = sorted(set(expected_services) - set(directory.services()))
        if missing:
            raise DurabilityError(
                f"deployment journal did not rebuild service(s) "
                f"{missing} the snapshot captured — the journal is "
                f"incomplete or stale"
            )
    expected_generation = audit.get("registry_generation", 0)
    if registry is not None and expected_generation:
        if registry.generation < expected_generation:
            raise DurabilityError(
                f"journal-rebuilt UDDI registry is at generation "
                f"{registry.generation}, snapshot expects at least "
                f"{expected_generation}"
            )
    wrappers_by_service: "Dict[str, ServiceWrapperRuntime]" = {}
    composites_by_name: "Dict[str, CompositeWrapperRuntime]" = {}
    for actor in kernel.actors():
        if isinstance(actor, ServiceWrapperRuntime):
            wrappers_by_service[actor.service.name] = actor
        elif isinstance(actor, CompositeWrapperRuntime):
            composites_by_name[actor.composite] = actor
    for entry in state.get("wrappers", []):
        wrapper = wrappers_by_service.get(entry["service"])
        if wrapper is None:
            raise DurabilityError(
                f"snapshot names service {entry['service']!r} but the "
                f"deployment journal did not rebuild it"
            )
        wrapper.rng.setstate(_rng_state_from_json(entry["rng"]))
        wrapper.completed = entry["completed"]
        wrapper.faulted = entry["faulted"]
    for entry in state.get("composites", []):
        wrapper = composites_by_name.get(entry["composite"])
        if wrapper is None:
            raise DurabilityError(
                f"snapshot names composite {entry['composite']!r} but the "
                f"deployment journal did not rebuild it"
            )
        wrapper._executions = {
            record["execution_id"]: ExecutionRecord(**record)
            for record in entry["records"]
        }
        wrapper._counter = itertools.count(entry["next_execution"])
    for address, seq in state.get("sequences", []):
        actor = kernel._actors.get(address)
        if actor is None:
            raise DurabilityError(
                f"snapshot holds a sequence position for {address!r} but "
                f"the deployment journal did not rebuild that actor"
            )
        if isinstance(actor, Coordinator):
            actor.invocation_seq = seq
        elif isinstance(actor, CommunityWrapperRuntime):
            actor.delegation_seq = seq
        else:
            raise DurabilityError(
                f"snapshot sequence position for {address!r} names "
                f"a {type(actor).__name__}, not a coordinator or "
                f"community wrapper"
            )
    for execution_id, invocation_id, entry in state.get("effects", []):
        effects.restore(execution_id, invocation_id, entry)


class SnapshotStore:
    """Numbered, checksummed snapshot files with atomic writes.

    ``snap-<n>.json`` holds ``{"snapshot_id", "sha256", "state"}``;
    the checksum covers the canonical JSON of ``state``.  ``latest()``
    falls back to the newest snapshot that verifies, so a torn snapshot
    write degrades to the previous barrier instead of poisoning
    recovery.
    """

    def __init__(self, directory: str, keep: int = 2) -> None:
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)
        existing = self._indices()
        self._next_id = (existing[-1] + 1) if existing else 1

    def _indices(self) -> "List[int]":
        indices = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def _path(self, snapshot_id: int) -> str:
        return os.path.join(self.directory, f"snap-{snapshot_id:06d}.json")

    @staticmethod
    def _checksum(state: "Dict[str, Any]") -> str:
        canonical = json.dumps(
            state, sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def take(self, state: "Dict[str, Any]") -> int:
        """Durably write a new snapshot; returns its id."""
        snapshot_id = self._next_id
        self._next_id += 1
        document = {
            "snapshot_id": snapshot_id,
            "sha256": self._checksum(state),
            "state": state,
        }
        path = self._path(snapshot_id)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, default=repr)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        self._prune()
        return snapshot_id

    def _prune(self) -> None:
        indices = self._indices()
        for stale in indices[:-self.keep] if self.keep else indices:
            try:
                os.remove(self._path(stale))
            except OSError:
                pass

    def latest(self) -> "Optional[Tuple[int, Dict[str, Any]]]":
        """Newest snapshot that passes its checksum, or ``None``."""
        for snapshot_id in reversed(self._indices()):
            try:
                with open(self._path(snapshot_id), encoding="utf-8") as f:
                    document = json.load(f)
                state = document["state"]
                if document["sha256"] == self._checksum(state):
                    return document["snapshot_id"], state
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None
