"""Exactly-once provider effects (:class:`EffectLedger`).

A replayed ``Invoke`` delivery must not re-run the provider's side
effect.  The ledger keys every completed invocation by the
``(execution_id, invocation_id)`` pair — the same correlation that the
PR 1 ``request_key`` machinery threads end-to-end — records the outcome
in the WAL *before* the reply is sent, and answers replayed duplicates
from the ledger instead of re-invoking the service.

Because the simulator only crashes at event boundaries, the
record-then-reply sequence inside a single ``do_work`` event is atomic
with respect to a crash; under ``fsync="always"`` a logged
``InvokeResult`` delivery therefore implies its effect record is
durable.  A real system would widen this with an intent record before
the side effect — see docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.net.message import Message

EffectKey = Tuple[str, str]


def canonical_send_key(message: Message) -> str:
    """A stable identity for an outbound message, ignoring message_id.

    ``message_id`` is freshly allocated per process, so replay-regenerated
    sends never share one with the original; identity for dedup is the
    (target, target_endpoint, kind, body) tuple instead.  Source is
    deliberately excluded: a recovered wrapper lives on the same node
    either way, and bodies carry the real correlation ids.
    """
    return json.dumps(
        [message.target, message.target_endpoint, message.kind, message.body],
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )


class EffectLedger:
    """Completed provider invocations, durable via the WAL."""

    def __init__(self, wal=None) -> None:
        self.wal = wal
        self._entries: "Dict[EffectKey, Dict[str, Any]]" = {}
        #: During replay, effect records re-discovered by re-running
        #: ``do_work`` are queued instead of appended (the WAL is
        #: suspended); ``flush_pending`` writes them once recovery ends
        #: so a *second* crash still finds them.
        self.suspended = False
        self._pending: "List[Tuple[str, str, Dict[str, Any]]]" = []
        self.hits = 0
        self.recorded = 0

    def lookup(
        self, execution_id: str, invocation_id: str
    ) -> "Optional[Dict[str, Any]]":
        entry = self._entries.get((execution_id, invocation_id))
        if entry is not None:
            self.hits += 1
        return entry

    def record(
        self,
        execution_id: str,
        invocation_id: str,
        ok: bool,
        outputs: "Optional[Dict[str, Any]]",
        fault: str,
    ) -> "Dict[str, Any]":
        entry = {"ok": ok, "outputs": outputs, "fault": fault}
        self._entries[(execution_id, invocation_id)] = entry
        self.recorded += 1
        if self.wal is not None:
            if self.suspended:
                self._pending.append((execution_id, invocation_id, entry))
            else:
                self.wal.append_effect(execution_id, invocation_id, entry)
        return entry

    def restore(
        self,
        execution_id: str,
        invocation_id: str,
        entry: "Dict[str, Any]",
    ) -> None:
        """Re-admit an entry read back from the WAL or a snapshot."""
        self._entries[(execution_id, invocation_id)] = dict(entry)

    def flush_pending(self) -> int:
        """Append queued replay-time effects to the (resumed) WAL.

        Ledger restore is position-independent, so end-of-log placement
        is fine for a second crash.
        """
        flushed = 0
        if self.wal is not None:
            for execution_id, invocation_id, entry in self._pending:
                self.wal.append_effect(execution_id, invocation_id, entry)
                flushed += 1
        self._pending.clear()
        return flushed

    def export(self) -> "List[List[Any]]":
        """JSON-friendly dump for snapshots, sorted for determinism."""
        return [
            [key[0], key[1], dict(entry)]
            for key, entry in sorted(self._entries.items())
        ]

    def clear(self) -> None:
        """Drop in-memory state (a crash); disk records are the truth."""
        self._entries.clear()
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._entries)
