"""CRC/length-framed write-ahead log segments.

On-disk frame format (all integers big-endian)::

    +-------+----------+-----------+-----------------+
    | magic | length   | crc32     | payload         |
    | 2 B   | 4 B      | 4 B       | ``length`` B    |
    +-------+----------+-----------+-----------------+

A reader stops at the first frame that is incomplete (torn write at
power loss) or fails its CRC; everything before it is valid.  Segments
are append-only and numbered monotonically (``wal-000001.seg``...),
so truncation after a snapshot is just deleting files — numbering
never restarts, which keeps replay ordering unambiguous.

Durability is modelled honestly: appended records sit in an explicit
in-memory ``pending`` buffer and reach the file *only* at sync points
decided by the fsync policy.  :meth:`SegmentWriter.crash` drops the
pending buffer — exactly what power loss does to an OS page cache that
was never fsynced — so tests and benchmarks measure the real trade-off
between ``always``/``interval``/``never`` instead of a flattering one.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from typing import List, Optional, Tuple

from repro.exceptions import DurabilityError

MAGIC = b"\xa5\x5a"
_HEADER = struct.Struct(">II")  # (payload length, crc32)
HEADER_SIZE = len(MAGIC) + _HEADER.size  # 10 bytes

_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.seg$")


def frame(payload: bytes) -> bytes:
    """One framed record ready to append."""
    return MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_segment(path: str) -> Tuple[List[bytes], bool, int]:
    """Read one segment, surviving a torn tail.

    Returns ``(payloads, clean, valid_bytes)``: the payloads of every
    frame up to the first incomplete or corrupt one, whether the file
    ended exactly on a frame boundary, and the byte offset of the last
    valid frame end (the safe truncation point).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    payloads: List[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            return payloads, False, offset
        if data[offset:offset + len(MAGIC)] != MAGIC:
            return payloads, False, offset
        length, crc = _HEADER.unpack_from(data, offset + len(MAGIC))
        end = offset + HEADER_SIZE + length
        if end > total:
            return payloads, False, offset
        payload = data[offset + HEADER_SIZE:end]
        if zlib.crc32(payload) != crc:
            return payloads, False, offset
        payloads.append(payload)
        offset = end
    return payloads, True, offset


class SegmentWriter:
    """Append-only writer for one segment file.

    Records buffer in memory until a sync point; ``sync()`` writes the
    buffered frames, flushes, and ``os.fsync``s, so file content always
    equals durable content.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "interval",
        fsync_interval_records: int = 64,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.fsync_interval_records = fsync_interval_records
        self._file = open(path, "ab")
        self._pending: List[bytes] = []
        self.records_appended = 0
        self.records_durable = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.closed = False

    def append(self, payload: bytes) -> None:
        if self.closed:
            raise DurabilityError(f"segment {self.path} is closed")
        framed = frame(payload)
        self._pending.append(framed)
        self.records_appended += 1
        self.bytes_appended += len(framed)
        if self.fsync == "always":
            self.sync()
        elif (
            self.fsync == "interval"
            and len(self._pending) >= self.fsync_interval_records
        ):
            self.sync()

    def sync(self) -> None:
        """Make everything appended so far durable."""
        if not self._pending:
            return
        self._file.write(b"".join(self._pending))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending.clear()
        self.records_durable = self.records_appended
        self.syncs += 1

    def crash(self) -> int:
        """Simulate power loss: drop the unsynced tail.  Returns records lost."""
        lost = self.records_appended - self.records_durable
        self._pending.clear()
        self._file.close()
        self.closed = True
        return lost

    def close(self) -> None:
        """Clean shutdown: sync whatever is pending, then close."""
        if self.closed:
            return
        self.sync()
        self._file.close()
        self.closed = True


class SegmentStore:
    """A directory of numbered segments with rolling and truncation."""

    def __init__(
        self,
        directory: str,
        fsync: str = "interval",
        fsync_interval_records: int = 64,
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval_records = fsync_interval_records
        self.segment_max_bytes = segment_max_bytes
        os.makedirs(directory, exist_ok=True)
        existing = self._segment_indices()
        self._next_index = (existing[-1] + 1) if existing else 1
        self._writer: Optional[SegmentWriter] = None
        # Aggregate counters folded in as writers close or roll.
        self.records_appended = 0
        self.bytes_appended = 0
        self._closed_syncs = 0
        self._closed_durable = 0

    def _segment_indices(self) -> List[int]:
        indices = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def segment_paths(self) -> List[str]:
        """Existing segment files in append order."""
        return [
            os.path.join(self.directory, f"wal-{index:06d}.seg")
            for index in self._segment_indices()
        ]

    def _fold_writer(self) -> None:
        assert self._writer is not None
        self._closed_syncs += self._writer.syncs
        self._closed_durable += self._writer.records_durable
        self._writer = None

    def _open_writer(self) -> SegmentWriter:
        path = os.path.join(self.directory, f"wal-{self._next_index:06d}.seg")
        self._next_index += 1
        self._writer = SegmentWriter(
            path,
            fsync=self.fsync,
            fsync_interval_records=self.fsync_interval_records,
        )
        return self._writer

    def append(self, payload: bytes) -> None:
        writer = self._writer
        if writer is None or writer.closed:
            writer = self._open_writer()
        elif writer.bytes_appended >= self.segment_max_bytes:
            writer.close()
            self._fold_writer()
            writer = self._open_writer()
        writer.append(payload)
        self.records_appended += 1
        self.bytes_appended += HEADER_SIZE + len(payload)

    def sync(self) -> None:
        if self._writer is not None and not self._writer.closed:
            self._writer.sync()

    @property
    def syncs(self) -> int:
        live = self._writer.syncs if self._writer is not None else 0
        return self._closed_syncs + live

    @property
    def records_durable(self) -> int:
        live = self._writer.records_durable if self._writer is not None else 0
        return self._closed_durable + live

    def read_all(self) -> Tuple[List[bytes], bool]:
        """All valid payloads across segments, oldest first.

        ``clean`` is False when any segment had a torn/corrupt tail; a
        corrupt *non-final* segment conservatively stops the read there
        (records beyond a hole have no ordering guarantee).
        """
        payloads: List[bytes] = []
        for path in self.segment_paths():
            segment_payloads, clean, _ = read_segment(path)
            payloads.extend(segment_payloads)
            if not clean:
                return payloads, False
        return payloads, True

    def truncate(self) -> int:
        """Delete every segment (after a durable snapshot).  Returns count.

        Numbering keeps increasing, so a truncated store never reuses a
        segment name.
        """
        if self._writer is not None:
            self._writer.close()
            self._fold_writer()
        paths = self.segment_paths()
        for path in paths:
            os.remove(path)
        return len(paths)

    def crash(self) -> int:
        """Drop the unsynced tail, as power loss would.  Returns records lost."""
        if self._writer is None:
            return 0
        lost = self._writer.crash()
        self._fold_writer()
        return lost

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._fold_writer()
