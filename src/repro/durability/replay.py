"""Deterministic replay of the write-ahead log.

Recovery rebuilds a killed shard in four moves:

1. **Redeploy** — the deployment journal re-creates every wrapper,
   community and coordinator on a fresh kernel (code + topology).
2. **Restore** — the newest valid snapshot re-applies wrapper RNG
   states, execution tables and the effect ledger; effect records in
   the log (written after the snapshot barrier) are re-admitted too.
3. **Replay** — each logged ``deliver`` record is re-handled at its
   original virtual time: the simulator clock is advanced record by
   record (timers scheduled by replayed handlers fire in between,
   exactly as they originally did), the message is decoded through the
   same envelope codecs, and handlers run for real.
4. **Resume** — sends regenerated during replay are swallowed when the
   log shows their delivery was already handled (they would be
   duplicates) and *held* when it does not (they were in flight when
   the shard died); held sends are re-injected into the live transport
   once replay ends, which is what resumes a mid-flight composition.

Provider side effects stay exactly-once throughout: replayed ``Invoke``
handling consults the effect ledger before touching the service (see
:mod:`repro.durability.dedup`).
"""

from __future__ import annotations

import dataclasses
from collections import Counter, deque
from typing import Callable, List, Optional

from repro.durability.dedup import canonical_send_key
from repro.durability.snapshot import restore_state
from repro.exceptions import DurabilityError
from repro.net.message import Message
from repro.runtime.client import RuntimeClient


@dataclasses.dataclass
class ReplayReport:
    """What one recovery actually did (diagnostics + bench metrics)."""

    clean_tail: bool = True
    snapshot_id: Optional[int] = None
    records_total: int = 0
    deliveries_replayed: int = 0
    effects_restored: int = 0
    quarantined: int = 0
    missing_actors: int = 0
    swallowed_sends: int = 0
    held_resent: int = 0
    redeployed: int = 0


class SendGate:
    """Shadows ``transport.send`` during (and after) replay.

    ``expected`` counts the canonical keys of every delivery the log
    already contains.  A send matching an expected key is a replay
    regeneration of traffic that was already handled — swallowed.  A
    send with no expected match while replaying was in flight at the
    crash — held, then re-injected by :meth:`finish`.  After ``finish``
    the gate stays installed and passes unmatched sends straight
    through; leftover expected keys can only be consumed by exact
    duplicates of already-handled messages (client retries carry fresh
    ``request_key``s, so genuine new traffic never matches).
    """

    def __init__(self, transport, expected: "Counter[str]") -> None:
        self.transport = transport
        self.expected = Counter(expected)
        self.replaying = True
        self.swallowed = 0
        self.held: "deque[Message]" = deque()
        self._inner = transport.send

    def install(self) -> None:
        # Instance attribute shadows the bound method: every caller that
        # resolved ``transport.send`` dynamically now goes through us.
        self.transport.send = self._on_send

    def _on_send(self, message: Message) -> None:
        key = canonical_send_key(message)
        if self.expected.get(key, 0) > 0:
            self.expected[key] -= 1
            self.swallowed += 1
            return
        if self.replaying:
            self.held.append(message)
            return
        self._inner(message)

    def finish(self) -> int:
        """End replay; re-inject held in-flight sends.  Returns count."""
        self.replaying = False
        resent = 0
        while self.held:
            self._inner(self.held.popleft())
            resent += 1
        return resent

    def seal(self) -> int:
        """Drop leftover expected keys; returns how many were pending.

        Leftover keys exist to absorb late regenerations from handler
        work still in flight when :meth:`finish` ran.  Once the shard
        has been pumped to quiescence nothing can regenerate any more —
        but a *new process incarnation* restarts the client's request-key
        counter, so genuinely new submissions can collide with leftover
        keys and vanish.  Cross-process recovery must therefore seal the
        gate at quiescence; same-process recovery may, its keys only
        ever match true duplicates.
        """
        leftover = sum(self.expected.values())
        self.expected.clear()
        return leftover


def _noop() -> None:
    return None


def replay_wal(dur, transport, kernel, report: ReplayReport) -> SendGate:
    """Steps 3+4 of recovery: replay ``deliver`` records, resume sends."""
    records, clean = dur.wal.read()
    report.clean_tail = clean
    report.records_total = len(records)
    for record in records:
        if record["t"] == "effect":
            dur.effects.restore(
                record["eid"],
                record["iid"],
                {
                    "ok": record["ok"],
                    "outputs": record["outputs"],
                    "fault": record["fault"],
                },
            )
            report.effects_restored += 1
        elif record["t"] == "quarantine":
            report.quarantined += 1
    deliveries = [r for r in records if r["t"] == "deliver"]
    expected: "Counter[str]" = Counter()
    for record in deliveries:
        expected[_record_key(record)] += 1
    gate = SendGate(transport, expected)
    gate.install()
    simulator = getattr(transport, "simulator", None)
    for record in deliveries:
        time_ms = record["ms"]
        if simulator is not None and time_ms > simulator.now:
            # run(until=t) alone does not advance an empty queue; the
            # noop pins the clock, and timers scheduled by earlier
            # replayed handlers fire on the way, as they originally did.
            simulator.schedule_at(time_ms, _noop)
            simulator.run(until=time_ms)
        actor = kernel._actors.get(f"{record['dst']}/{record['dep']}")
        if actor is None:
            report.missing_actors += 1
            continue
        message = Message(
            kind=record["kind"],
            source=record["src"],
            source_endpoint=record["sep"],
            target=record["dst"],
            target_endpoint=record["dep"],
            body=record["body"],
        )
        # Feed the kernel taps first so observers (the tracer) rebuild
        # the same event stream, then hand the message to the mailbox
        # pipeline — full codec decode, middleware, handler.
        kernel._on_delivery(message, time_ms)
        actor.on_message(message)
        report.deliveries_replayed += 1
    report.held_resent = gate.finish()
    report.swallowed_sends = gate.swallowed
    return gate


def _record_key(record) -> str:
    return canonical_send_key(Message(
        kind=record["kind"],
        source=record["src"],
        source_endpoint=record["sep"],
        target=record["dst"],
        target_endpoint=record["dep"],
        body=record["body"],
    ))


def recover_attached(
    dur,
    transport,
    kernel,
    rebind: "Optional[Callable[[], None]]" = None,
) -> ReplayReport:
    """Run a full recovery against an already-attached fresh runtime.

    ``rebind`` runs after redeploy+restore and before replay: session
    clients must exist on the fresh kernel so replayed ``ExecuteResult``
    deliveries complete their handles.
    """
    report = ReplayReport()
    dur.begin_recovery()
    try:
        report.redeployed = dur.journal.redeploy(dur.deployer, dur.engine)
        snapshot = dur.snapshots.latest()
        if snapshot is not None:
            snapshot_id, state = snapshot
            directory = (
                dur.deployer.directory if dur.deployer is not None else None
            )
            registry = dur.engine.registry if dur.engine is not None else None
            restore_state(
                kernel, dur.effects, state,
                directory=directory, registry=registry,
            )
            report.snapshot_id = snapshot_id
        if rebind is not None:
            rebind()
        replay_wal(dur, transport, kernel, report)
    finally:
        dur.finish_recovery()
    return report


def migrate_client(old, new, sessions) -> int:
    """Move completed-set and in-flight callbacks from a dead client.

    Handles bound to ``old`` are re-pointed at ``new`` and their
    result callbacks re-registered, so a composition that finishes
    after recovery still completes the original handle.
    """
    moved = 0
    if old is None:
        return moved
    new._completed = set(old._completed)
    new._completed_order = deque(old._completed_order)
    for session in sessions:
        with session._inflight_lock:
            for key, handle in session._inflight.items():
                if handle._client is old:
                    new._callbacks[key] = handle._deliver
                    handle.client = new
                    moved += 1
    return moved


def rebind_fleet_sessions(sessions, shard_id: int, slice_) -> int:
    """Re-point every session's client for ``shard_id`` at a new slice."""
    moved = 0
    for session in sessions:
        with session._shard_clients_lock:
            old = session._shard_clients.get(shard_id)
            if old is None:
                continue
            new = RuntimeClient(
                session.name, session.host,
                slice_.transport, kernel=slice_.kernel,
            )
            slice_.ensure_node(session.host)
            new.install()
            session._shard_clients[shard_id] = new
        moved += migrate_client(old, new, [session])
    return moved


def recover_platform(crashed):
    """Rebuild a crashed *classic* platform; returns ``(fresh, report)``.

    The crashed platform's sessions are adopted by the fresh one (same
    objects, new transport underneath), so existing handles resolve
    after recovery.
    """
    dur = getattr(crashed, "durability", None)
    if dur is None:
        raise DurabilityError(
            "platform has no durability configured "
            "(set PlatformConfig.durability)"
        )
    if getattr(crashed, "fleet", None) is not None:
        raise DurabilityError(
            "use FleetRuntime.kill_shard()/recover_shard() for fleet "
            "platforms"
        )
    if not dur.crashed:
        dur.crash()
    from repro.api.platform import Platform  # local: api imports us

    config = dataclasses.replace(crashed.config, durability=None)
    fresh = Platform(config)
    fresh.config = crashed.config
    dur.attach(
        transport=fresh.transport,
        kernel=fresh.kernel,
        deployer=fresh.deployer,
        engine=fresh.discovery,
    )
    fresh.durability = dur

    def rebind() -> None:
        for session in list(crashed._sessions.values()):
            old = session.client
            session.platform = fresh
            fresh.ensure_node(session.host)
            new = RuntimeClient(
                session.name, session.host,
                fresh.transport, kernel=fresh.kernel,
            )
            new.install()
            migrate_client(old, new, [session])
            session.client = new
            fresh._sessions[session.name] = session

    report = recover_attached(dur, fresh.transport, fresh.kernel,
                              rebind=rebind)
    return fresh, report
