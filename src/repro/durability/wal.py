"""The write-ahead log of kernel envelopes.

Every message a kernel actor *handles* is logged at the single mailbox
choke point, via :class:`DurabilityMiddleware` riding the
:class:`~repro.kernel.middleware.ActorMiddleware` ``before_handle``
hook.  That hook fires after envelope decode and before the handler —
exactly the serialization point where the PR 4 ``to_body()/from_body()``
codecs define the record format, so a logged ``body`` replays through
the same codec path as a live delivery.

Record types (JSON, one per frame):

* ``deliver`` — a handled delivery: virtual time, kind, source/target
  node+endpoint, and the envelope body.
* ``effect`` — a provider side effect keyed ``(execution_id,
  invocation_id)``; written by the effect ledger *before* the reply is
  sent, which is what makes replayed invocations exactly-once.
* ``quarantine`` — a malformed envelope, with the offending verb and
  sender surfaced by the ``on_malformed`` hook; quarantined rather
  than silently skipped so forensics survive the crash.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.durability.segments import SegmentStore
from repro.kernel.middleware import ActorMiddleware
from repro.net.message import Message


def _encode(record: "Dict[str, Any]") -> bytes:
    # default=repr keeps forensic records (quarantine bodies) loggable
    # even when a handler was fed something non-JSON.
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=repr
    ).encode("utf-8")


class WriteAheadLog:
    """Typed records over a :class:`SegmentStore`."""

    def __init__(self, store: SegmentStore) -> None:
        self.store = store
        #: While True (during replay) nothing is appended — replayed
        #: deliveries must not re-log themselves.
        self.suspended = False
        self.deliveries_logged = 0
        self.effects_logged = 0
        self.quarantined = 0

    def append_delivery(self, message: Message, time_ms: float) -> None:
        if self.suspended:
            return
        self.store.append(_encode({
            "t": "deliver",
            "ms": time_ms,
            "kind": message.kind,
            "src": message.source,
            "sep": message.source_endpoint,
            "dst": message.target,
            "dep": message.target_endpoint,
            "body": message.body,
        }))
        self.deliveries_logged += 1

    def append_effect(
        self,
        execution_id: str,
        invocation_id: str,
        entry: "Dict[str, Any]",
    ) -> None:
        if self.suspended:
            return
        self.store.append(_encode({
            "t": "effect",
            "eid": execution_id,
            "iid": invocation_id,
            "ok": entry["ok"],
            "outputs": entry["outputs"],
            "fault": entry["fault"],
        }))
        self.effects_logged += 1

    def append_quarantine(
        self, message: Message, error: Exception, time_ms: float
    ) -> None:
        if self.suspended:
            return
        self.store.append(_encode({
            "t": "quarantine",
            "ms": time_ms,
            "kind": message.kind,
            "src": message.source,
            "sep": message.source_endpoint,
            "dst": message.target,
            "dep": message.target_endpoint,
            "error": str(error),
            "body": message.body,
        }))
        self.quarantined += 1

    def read(self) -> "Tuple[List[Dict[str, Any]], bool]":
        """All decodable records, oldest first, plus tail cleanliness."""
        payloads, clean = self.store.read_all()
        return [json.loads(payload) for payload in payloads], clean

    def sync(self) -> None:
        self.store.sync()

    def truncate(self) -> int:
        return self.store.truncate()

    def crash(self) -> int:
        return self.store.crash()

    def close(self) -> None:
        self.store.close()


class DurabilityMiddleware(ActorMiddleware):
    """Taps the mailbox pipeline into the WAL.

    Only ``before_handle`` and ``on_malformed`` are overridden, so the
    kernel's hook-rebuild keeps the other stages off the hot path.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    def before_handle(self, actor, envelope, message) -> None:
        self.wal.append_delivery(message, actor.transport.now_ms())

    def on_malformed(self, actor, message, error) -> None:
        self.wal.append_quarantine(message, error, actor.transport.now_ms())
