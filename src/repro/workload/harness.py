"""Experiment harness: deploy, execute, measure.

Benchmarks and integration tests share these helpers so every experiment
builds its environment the same way: a deterministic simulated network,
one host per synthetic provider, a composite either P2P-deployed (one
coordinator per state on the provider hosts) or centrally orchestrated
(all control on one host), and a batch of concurrent executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.baselines.central import deploy_central
from repro.deployment.deployer import Deployer
from repro.deployment.placement import PlacementPolicy
from repro.exceptions import DeploymentError
from repro.expr import FunctionRegistry
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.simnet import SimTransport
from repro.runtime.client import RuntimeClient
from repro.runtime.directory import ServiceDirectory
from repro.services.composite import CompositeService
from repro.services.description import OperationSpec, ServiceDescription
from repro.sim.random_streams import RandomStreams
from repro.workload.generator import SyntheticWorkload


@dataclass
class SimEnvironment:
    """A simulated testbed: transport + deployer + directory + streams."""

    transport: SimTransport
    deployer: Deployer
    directory: ServiceDirectory
    streams: RandomStreams
    _clients: Dict[str, RuntimeClient] = field(default_factory=dict)

    def client(self, name: str = "enduser",
               host: str = "client-host") -> RuntimeClient:
        """Get (or create) a client; repeated calls reuse the endpoint."""
        key = f"{name}@{host}"
        existing = self._clients.get(key)
        if existing is not None:
            return existing
        if not self.transport.has_node(host):
            self.transport.add_node(host)
        client = RuntimeClient(name, host, self.transport,
                               kernel=self.deployer.kernel)
        client.install()
        self._clients[key] = client
        return client


def build_sim_environment(
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    loss_rate: float = 0.0,
    registry: Optional[FunctionRegistry] = None,
    placement: Optional[PlacementPolicy] = None,
    processing_ms: float = 0.0,
) -> SimEnvironment:
    """Create a deterministic simulated environment.

    ``processing_ms`` enables the per-host serial message-handling model
    (see :class:`~repro.net.simnet.SimTransport`) used by the scalability
    benchmarks.
    """
    streams = RandomStreams(seed)
    transport = SimTransport(
        latency=latency or FixedLatency(remote_ms=5.0),
        loss_rate=loss_rate,
        rng=streams.stream("network"),
        processing_ms=processing_ms,
    )
    directory = ServiceDirectory()
    deployer = Deployer(transport, directory, registry=registry,
                        placement=placement)
    return SimEnvironment(
        transport=transport,
        deployer=deployer,
        directory=directory,
        streams=streams,
    )


def deploy_workload_services(
    env: SimEnvironment, workload: SyntheticWorkload
) -> "Dict[str, str]":
    """Deploy each synthetic service on its own host; returns hosts map.

    Raises :class:`~repro.exceptions.DeploymentError` when a generated
    service name is already registered in the environment — two
    workloads sharing a ``service_prefix`` would otherwise silently
    re-point each other's names (the directory is latest-wins by
    design), corrupting every composition still referring to the first
    workload's providers.
    """
    collisions = [
        service.name for service in workload.services
        if env.directory.knows(service.name)
    ]
    if collisions:
        raise DeploymentError(
            f"workload service name(s) {collisions} already deployed in "
            f"this environment; give each workload a distinct "
            f"GeneratorParams.service_prefix"
        )
    hosts: Dict[str, str] = {}
    for index, service in enumerate(workload.services):
        host = f"svc-host-{index:03d}"
        env.deployer.deploy_elementary(
            service, host, rng=env.streams.stream(f"svc-{index}")
        )
        hosts[service.name] = host
    return hosts


def composite_for_workload(
    workload: SyntheticWorkload,
    name: str = "SyntheticComposite",
) -> CompositeService:
    """Wrap a generated chart in a composite service with an open spec."""
    description = ServiceDescription(
        name=name, provider="SynthCo",
        description="synthetic benchmark composite",
    )
    composite = CompositeService(description)
    composite.define_operation(
        OperationSpec(name="run"),  # untyped: outputs are the raw env
        workload.chart,
    )
    return composite


@dataclass
class RunReport:
    """Measured outcome of one batch of executions."""

    architecture: str
    executions: int
    successes: int
    latencies_ms: List[float] = field(default_factory=list)
    messages_total: int = 0
    messages_remote: int = 0
    messages_local: int = 0
    bytes_total: int = 0
    load_by_node: Dict[str, int] = field(default_factory=dict)
    peak_node: str = ""
    peak_node_load: int = 0
    load_concentration: float = 0.0
    makespan_ms: float = 0.0

    @property
    def success_rate(self) -> float:
        return self.successes / self.executions if self.executions else 0.0

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def max_latency_ms(self) -> float:
        return max(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def messages_per_execution(self) -> float:
        return self.messages_total / self.executions if self.executions else 0.0

    def row(self) -> "Dict[str, Any]":
        """Flat dict for table printing in benchmarks."""
        return {
            "arch": self.architecture,
            "execs": self.executions,
            "ok": self.successes,
            "mean_ms": round(self.mean_latency_ms, 2),
            "max_ms": round(self.max_latency_ms, 2),
            "msgs": self.messages_total,
            "remote": self.messages_remote,
            "msgs/exec": round(self.messages_per_execution, 1),
            "peak_node": self.peak_node,
            "peak_load": self.peak_node_load,
            "concentration": round(self.load_concentration, 3),
            "makespan_ms": round(self.makespan_ms, 2),
        }


def _run_batch(
    env: SimEnvironment,
    address: "Tuple[str, str]",
    operation: str,
    args_list: "List[Mapping[str, Any]]",
    architecture: str,
    timeout_ms: Optional[float],
    interarrival_ms: float,
) -> RunReport:
    """Submit all requests (optionally staggered) and drain the sim."""
    env.transport.stats.reset()
    client = env.client(name=f"load-{architecture}")
    target_node, target_endpoint = address
    start = env.transport.now_ms()

    submitted = 0

    def submit_one(args: "Mapping[str, Any]") -> None:
        client.submit(target_node, target_endpoint, operation, args,
                      deadline_ms=timeout_ms)

    for index, args in enumerate(args_list):
        if interarrival_ms > 0:
            env.transport.simulator.schedule(
                index * interarrival_ms,
                lambda a=args: submit_one(a),
            )
        else:
            submit_one(args)
        submitted += 1

    env.transport.wait_for(
        lambda: client.results_received() >= submitted,
        timeout_ms=None,
    )
    makespan = env.transport.now_ms() - start
    results = client.take_results()

    stats = env.transport.stats
    peak_node, peak_load = stats.peak_node_load()
    return RunReport(
        architecture=architecture,
        executions=submitted,
        successes=sum(1 for r in results.values() if r.ok),
        latencies_ms=[],  # filled below from wrapper records by callers
        messages_total=stats.sent_total,
        messages_remote=stats.remote_total,
        messages_local=stats.local_total,
        bytes_total=stats.bytes_total,
        load_by_node=stats.load_by_node(),
        peak_node=peak_node,
        peak_node_load=peak_load,
        load_concentration=stats.load_concentration(),
        makespan_ms=makespan,
    )


def run_p2p(
    env: SimEnvironment,
    composite: CompositeService,
    args_list: "List[Mapping[str, Any]]",
    operation: str = "run",
    composite_host: str = "composite-host",
    timeout_ms: Optional[float] = None,
    interarrival_ms: float = 0.0,
) -> RunReport:
    """Deploy P2P, run the batch, undeploy, report."""
    deployment = env.deployer.deploy_composite(
        composite, composite_host, default_timeout_ms=timeout_ms,
    )
    try:
        report = _run_batch(
            env, deployment.address, operation, args_list,
            architecture="p2p", timeout_ms=timeout_ms,
            interarrival_ms=interarrival_ms,
        )
        report.latencies_ms = [
            r.duration_ms for r in deployment.wrapper.records()
            if r.status == "success"
        ]
        return report
    finally:
        deployment.undeploy()
        env.directory.unregister(composite.name)


def run_central(
    env: SimEnvironment,
    composite: CompositeService,
    args_list: "List[Mapping[str, Any]]",
    operation: str = "run",
    central_host: str = "central-host",
    timeout_ms: Optional[float] = None,
    interarrival_ms: float = 0.0,
) -> RunReport:
    """Deploy the central baseline, run the batch, undeploy, report."""
    deployment = deploy_central(
        composite, central_host, env.transport, env.directory,
        default_timeout_ms=timeout_ms, kernel=env.deployer.kernel,
    )
    try:
        report = _run_batch(
            env, deployment.address, operation, args_list,
            architecture="central", timeout_ms=timeout_ms,
            interarrival_ms=interarrival_ms,
        )
        report.latencies_ms = [
            e.finished_ms - e.started_ms
            for e in deployment.orchestrator.records()
            if e.status == "success"
        ]
        return report
    finally:
        deployment.undeploy()
