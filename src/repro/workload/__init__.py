"""Synthetic workloads and the benchmark experiment harness.

The demo paper evaluates qualitatively; to measure its claims we need
parameterised composite services.  :mod:`repro.workload.generator`
produces random-but-seeded statecharts (sequences, XOR choices, AND
parallelism, optional compound nesting) plus matching synthetic services;
:mod:`repro.workload.harness` builds simulated environments, deploys
either architecture, drives executions and reports latency/traffic
metrics; :mod:`repro.workload.arrivals` adds *open-loop* arrival
processes (Poisson, bursty, diurnal) that model millions of independent
users whose request rate does not back off when the platform slows —
the load shape the fleet benchmarks inject.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workload.generator import (
    SyntheticWorkload,
    make_chain_workload,
    make_parallel_workload,
    make_workload,
)
from repro.workload.harness import (
    RunReport,
    SimEnvironment,
    build_sim_environment,
    run_central,
    run_p2p,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "RunReport",
    "SimEnvironment",
    "SyntheticWorkload",
    "build_sim_environment",
    "make_chain_workload",
    "make_parallel_workload",
    "make_workload",
    "run_central",
    "run_p2p",
]
