"""Random (seeded) composite-service generator.

The generator produces statecharts from a small structural grammar::

    block    := task | xor(block, block) | and(block, block) | seq
    seq      := block block

with probabilities steered by :class:`GeneratorParams`.  Every generated
chart is structurally valid by construction, every XOR guard routes on a
dedicated boolean request argument (so executions are deterministic given
the request), and every task is bound to its own synthetic service.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService
from repro.services.profile import ServiceProfile
from repro.statecharts.builder import StatechartBuilder
from repro.statecharts.model import Statechart


@dataclass
class SyntheticWorkload:
    """A generated composite service and everything needed to run it."""

    chart: Statechart
    services: List[ElementaryService]
    request_args: Dict[str, Any]
    task_count: int
    xor_count: int
    and_count: int

    def service_names(self) -> "List[str]":
        return [s.name for s in self.services]


@dataclass(frozen=True)
class GeneratorParams:
    """Steering knobs for the random generator."""

    tasks: int = 8
    p_xor: float = 0.2
    p_and: float = 0.2
    service_latency_ms: float = 20.0
    service_jitter_ms: float = 5.0
    service_reliability: float = 1.0
    seed: int = 0
    #: Service-name prefix; give each workload of a multi-workload run
    #: (e.g. one per fleet shard) its own so names never collide in a
    #: shared directory.
    service_prefix: str = "SynthService"


def _make_service(
    index: int,
    params: GeneratorParams,
) -> ElementaryService:
    """One synthetic provider: operation ``work`` echoes a step marker."""
    name = f"{params.service_prefix}{index:03d}"
    description = ServiceDescription(
        name=name,
        provider=f"{params.service_prefix}Provider{index:03d}",
        description="synthetic benchmark service",
    )
    description.add_operation(OperationSpec(
        name="work",
        inputs=(Parameter("step", ParameterType.INT, required=False),),
        outputs=(Parameter("result", ParameterType.INT),),
    ))
    service = ElementaryService(description, ServiceProfile(
        latency_mean_ms=params.service_latency_ms,
        latency_jitter_ms=params.service_jitter_ms,
        reliability=params.service_reliability,
    ))

    def work(inputs: "Dict[str, Any]") -> "Dict[str, Any]":
        step = inputs.get("step") or 0
        return {"result": step + 1}

    service.bind("work", work)
    return service


class _Generator:
    """Stateful recursive builder for one workload."""

    def __init__(self, params: GeneratorParams) -> None:
        self.params = params
        self.rng = random.Random(params.seed)
        self.services: List[ElementaryService] = []
        self.request_args: Dict[str, Any] = {}
        self.xor_count = 0
        self.and_count = 0
        self._task_budget = params.tasks
        self._branch_counter = 0

    def fresh_task(self, builder: StatechartBuilder) -> str:
        index = len(self.services)
        service = _make_service(index, self.params)
        self.services.append(service)
        state_id = f"T{index:03d}"
        builder.task(
            state_id, service.name, "work",
            inputs={"step": str(index)},
            outputs={f"result_{index}": "result"},
        )
        return state_id

    def build_chart(self, name: str) -> Statechart:
        builder = StatechartBuilder(name)
        builder.initial()
        previous = "initial"
        while self._task_budget > 0:
            previous = self._emit_block(builder, previous)
        builder.final()
        builder.arc(previous, "final")
        return builder.build()

    def _emit_block(self, builder: StatechartBuilder, previous: str) -> str:
        """Append one block after ``previous``; returns its last state id."""
        roll = self.rng.random()
        if roll < self.params.p_and and self._task_budget >= 2:
            return self._emit_and(builder, previous)
        if (
            roll < self.params.p_and + self.params.p_xor
            and self._task_budget >= 2
        ):
            return self._emit_xor(builder, previous)
        return self._emit_task(builder, previous)

    def _emit_task(self, builder: StatechartBuilder, previous: str) -> str:
        self._task_budget -= 1
        state_id = self.fresh_task(builder)
        builder.arc(previous, state_id)
        return state_id

    def _emit_xor(self, builder: StatechartBuilder, previous: str) -> str:
        """Two guarded branches rejoining at a shared successor task."""
        self._branch_counter += 1
        branch_var = f"branch_{self._branch_counter}"
        self.request_args[branch_var] = self.rng.random() < 0.5

        self._task_budget -= 2
        left = self.fresh_task(builder)
        right = self.fresh_task(builder)
        builder.arc(previous, left, condition=f"{branch_var} = true")
        builder.arc(previous, right, condition=f"{branch_var} != true")
        if self._task_budget > 0:
            self._task_budget -= 1
            merge = self.fresh_task(builder)
        else:
            # Merge through a shared extra task is impossible; rejoin the
            # two branches on one fresh task regardless of budget to keep
            # the chart single-exit.
            merge = self.fresh_task(builder)
        builder.arc(left, merge)
        builder.arc(right, merge)
        self.xor_count += 1
        return merge

    def _emit_and(self, builder: StatechartBuilder, previous: str) -> str:
        """An AND state with two single-task regions."""
        self.and_count += 1
        regions = []
        for _region in range(2):
            self._task_budget -= 1
            index = len(self.services)
            service = _make_service(index, self.params)
            self.services.append(service)
            region = (
                StatechartBuilder(f"region{index}")
                .initial()
                .task(
                    f"T{index:03d}", service.name, "work",
                    inputs={"step": str(index)},
                    outputs={f"result_{index}": "result"},
                )
                .final()
                .chain("initial", f"T{index:03d}", "final")
                .build()
            )
            regions.append(region)
        and_id = f"AND{self.and_count:03d}"
        builder.parallel(and_id, regions)
        builder.arc(previous, and_id)
        return and_id


def make_workload(
    params: Optional[GeneratorParams] = None, **overrides: Any
) -> SyntheticWorkload:
    """Generate one workload; keyword overrides tweak the params."""
    if params is None:
        params = GeneratorParams(**overrides)
    elif overrides:
        raise ValueError("pass either params or overrides, not both")
    generator = _Generator(params)
    chart = generator.build_chart(
        f"synthetic-{params.tasks}t-s{params.seed}"
    )
    return SyntheticWorkload(
        chart=chart,
        services=generator.services,
        request_args=dict(generator.request_args),
        task_count=len(generator.services),
        xor_count=generator.xor_count,
        and_count=generator.and_count,
    )


def make_chain_workload(
    tasks: int,
    seed: int = 0,
    service_latency_ms: float = 20.0,
    service_reliability: float = 1.0,
    service_prefix: str = "SynthService",
) -> SyntheticWorkload:
    """A pure sequential pipeline of ``tasks`` services."""
    return make_workload(GeneratorParams(
        tasks=tasks, p_xor=0.0, p_and=0.0, seed=seed,
        service_latency_ms=service_latency_ms,
        service_jitter_ms=0.0,
        service_reliability=service_reliability,
        service_prefix=service_prefix,
    ))


def make_parallel_workload(
    branches: int,
    seed: int = 0,
    service_latency_ms: float = 20.0,
) -> SyntheticWorkload:
    """One wide AND state with ``branches`` single-task regions.

    Built directly (not via the grammar) so width is exact.
    """
    params = GeneratorParams(
        tasks=branches, seed=seed,
        service_latency_ms=service_latency_ms, service_jitter_ms=0.0,
    )
    services: List[ElementaryService] = []
    regions: List[Statechart] = []
    for index in range(branches):
        service = _make_service(index, params)
        services.append(service)
        regions.append(
            StatechartBuilder(f"region{index}")
            .initial()
            .task(
                f"T{index:03d}", service.name, "work",
                inputs={"step": str(index)},
                outputs={f"result_{index}": "result"},
            )
            .final()
            .chain("initial", f"T{index:03d}", "final")
            .build()
        )
    chart = (
        StatechartBuilder(f"parallel-{branches}w-s{seed}")
        .initial()
        .parallel("AND001", regions)
        .final()
        .chain("initial", "AND001", "final")
        .build()
    )
    return SyntheticWorkload(
        chart=chart,
        services=services,
        request_args={},
        task_count=branches,
        xor_count=0,
        and_count=1,
    )
