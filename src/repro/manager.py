"""The v1 ``ServiceManager`` facade — now a shim over :class:`Platform`.

.. deprecated:: 2.0
   ``ServiceManager`` is kept for compatibility with v1 call sites and
   delegates everything to :class:`repro.api.Platform`.  New code should
   construct a ``Platform`` (declaratively, from a
   :class:`~repro.api.PlatformConfig`) and use handle-based sessions::

       platform = Platform()
       platform.provider("host").elementary(service)
       session = platform.session("alice", "alice-laptop")
       handle = session.submit("ServiceName", "operation", {...})
       result = handle.result()

The blocking one-call-per-execution semantics of ``locate_and_execute``
are preserved exactly (it runs on the same correlation path the handles
use); the three architecture modules remain reachable as
``manager.discovery`` / ``manager.editor`` / ``manager.deployer``.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Mapping, Optional, Union

from repro.api.config import PlatformConfig
from repro.api.platform import Platform
from repro.deployment.deployer import CompositeDeployment, Deployer
from repro.deployment.placement import PlacementPolicy
from repro.discovery.engine import ServiceDiscoveryEngine
from repro.editor.drafts import CompositeDraft, ServiceEditor
from repro.expr import FunctionRegistry
from repro.net.transport import Transport
from repro.runtime.client import RuntimeClient
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import ExecutionResult
from repro.runtime.service_wrapper import ServiceWrapperRuntime
from repro.selection.policies import SelectionPolicy
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.elementary import ElementaryService


class ServiceManager:
    """Deprecated v1 facade delegating to :class:`repro.api.Platform`."""

    def __init__(
        self,
        transport: Transport,
        registry: Optional[FunctionRegistry] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        warnings.warn(
            "ServiceManager is deprecated; use repro.api.Platform "
            "(sessions with submit()/ExecutionHandle replace blocking "
            "client calls)",
            DeprecationWarning,
            stacklevel=2,
        )
        # trace=False keeps the v1 behaviour: no observer attached, no
        # per-execution timelines retained.
        self.platform = Platform(
            PlatformConfig(registry=registry, placement=placement,
                           trace=False),
            transport=transport,
        )

    # v1 attribute surface ---------------------------------------------------

    @property
    def transport(self) -> Transport:
        return self.platform.transport

    @property
    def directory(self) -> ServiceDirectory:
        return self.platform.directory

    @property
    def deployer(self) -> Deployer:
        return self.platform.deployer

    @property
    def discovery(self) -> ServiceDiscoveryEngine:
        return self.platform.discovery

    @property
    def editor(self) -> ServiceEditor:
        return self.platform.editor

    # Provider flows ---------------------------------------------------------

    def register_elementary(
        self,
        service: ElementaryService,
        host: str,
        category: str = "",
        publish: bool = True,
        rng: Optional[random.Random] = None,
    ) -> ServiceWrapperRuntime:
        """Deploy an elementary service and (by default) publish it."""
        return self.platform.register_elementary(
            service, host, category=category, publish=publish, rng=rng,
        )

    def register_community(
        self,
        community: ServiceCommunity,
        host: str,
        policy: "Union[SelectionPolicy, str]" = "multi-attribute",
        category: str = "",
        publish: bool = True,
        timeout_ms: float = 1000.0,
    ) -> CommunityWrapperRuntime:
        """Deploy a community wrapper and (by default) publish it."""
        return self.platform.register_community(
            community, host, policy=policy, category=category,
            publish=publish, timeout_ms=timeout_ms,
        )

    # Composer flows --------------------------------------------------------------

    def new_draft(
        self, name: str, provider: str = "", documentation: str = ""
    ) -> CompositeDraft:
        """Open the editor on a new composite draft."""
        return self.platform.editor.new_draft(name, provider, documentation)

    def deploy_composite(
        self,
        composite: "Union[CompositeService, CompositeDraft]",
        host: str,
        category: str = "composite",
        publish: bool = True,
        default_timeout_ms: Optional[float] = None,
    ) -> CompositeDeployment:
        """Deploy (and by default publish) a composite service."""
        return self.platform.deploy_composite(
            composite, host, category=category, publish=publish,
            default_timeout_ms=default_timeout_ms,
        )

    # End-user flows ----------------------------------------------------------------

    def client(self, name: str, host: str) -> RuntimeClient:
        """Get (or create) a named end-user client on ``host``.

        Raises :class:`~repro.exceptions.SelfServError` when ``name``
        already exists on a different host — the v1 facade used to
        silently hand back the old client, hiding the mistake.
        """
        return self.platform.session(name, host).client

    def locate_and_execute(
        self,
        client_name: str,
        client_host: str,
        service_name: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        timeout_ms: Optional[float] = 60_000.0,
    ) -> ExecutionResult:
        """The full Figure 3 flow: search UDDI, resolve binding, execute."""
        session = self.platform.session(client_name, client_host)
        return session.execute(service_name, operation, arguments,
                               timeout_ms=timeout_ms)
