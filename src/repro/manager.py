"""The v1 ``ServiceManager`` facade — now a pure shim over :class:`Platform`.

.. deprecated:: 2.0
   ``ServiceManager`` is kept for compatibility with v1 call sites and
   delegates *everything* to :class:`repro.api.Platform` — it owns no
   wiring of its own.  New code should construct a ``Platform``
   (declaratively, from a :class:`~repro.api.PlatformConfig`) and use
   handle-based sessions::

       platform = Platform()
       platform.provider("host").elementary(service)
       session = platform.session("alice", "alice-laptop")
       handle = session.submit("ServiceName", "operation", {...})
       result = handle.result()

The module surfaces (``manager.discovery`` / ``manager.editor`` /
``manager.deployer`` / ``manager.directory`` / ``manager.transport``)
and the provider/composer registration methods are the platform's own,
reached through attribute delegation; only the three v1-specific entry
points (:meth:`~ServiceManager.client`, :meth:`~ServiceManager.new_draft`
and :meth:`~ServiceManager.locate_and_execute`) are defined here, because
their names or semantics differ from the v2 surface.  The blocking
one-call-per-execution semantics of ``locate_and_execute`` are preserved
exactly (it runs on the same correlation path the handles use).
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Optional

from repro.api.config import PlatformConfig
from repro.api.platform import Platform
from repro.deployment.placement import PlacementPolicy
from repro.editor.drafts import CompositeDraft
from repro.expr import FunctionRegistry
from repro.net.transport import Transport
from repro.runtime.client import RuntimeClient
from repro.runtime.protocol import ExecutionResult

#: Platform attributes the shim re-exports verbatim.  Everything v1
#: exposed is here; anything else raises ``AttributeError`` as usual.
_DELEGATED = frozenset({
    "transport",
    "directory",
    "deployer",
    "discovery",
    "editor",
    "kernel",
    "register_elementary",
    "register_community",
    "deploy_composite",
})


class ServiceManager:
    """Deprecated v1 facade delegating to :class:`repro.api.Platform`."""

    def __init__(
        self,
        transport: Transport,
        registry: Optional[FunctionRegistry] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        warnings.warn(
            "ServiceManager is deprecated; use repro.api.Platform "
            "(sessions with submit()/ExecutionHandle replace blocking "
            "client calls)",
            DeprecationWarning,
            stacklevel=2,
        )
        # trace=False keeps the v1 behaviour: no observer attached, no
        # per-execution timelines retained.
        self.platform = Platform(
            PlatformConfig(registry=registry, placement=placement,
                           trace=False),
            transport=transport,
        )

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal lookup fails: the delegated surface
        # is the platform's own — no duplicated wiring in the shim.
        if name in _DELEGATED:
            return getattr(self.platform, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __dir__(self) -> "list[str]":
        return sorted(set(super().__dir__()) | _DELEGATED)

    # v1-specific entry points ----------------------------------------------

    def new_draft(
        self, name: str, provider: str = "", documentation: str = ""
    ) -> CompositeDraft:
        """Open the editor on a new composite draft (v1 name)."""
        return self.platform.editor.new_draft(name, provider, documentation)

    def client(self, name: str, host: str) -> RuntimeClient:
        """Get (or create) a named end-user client on ``host``.

        Raises :class:`~repro.exceptions.SelfServError` when ``name``
        already exists on a different host — the v1 facade used to
        silently hand back the old client, hiding the mistake.
        """
        return self.platform.session(name, host).client

    def locate_and_execute(
        self,
        client_name: str,
        client_host: str,
        service_name: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        timeout_ms: Optional[float] = 60_000.0,
    ) -> ExecutionResult:
        """The full Figure 3 flow: search UDDI, resolve binding, execute."""
        session = self.platform.session(client_name, client_host)
        return session.execute(service_name, operation, arguments,
                               timeout_ms=timeout_ms)
