"""The SELF-SERV Service Manager (Figure 1).

The manager bundles the three architecture modules over one transport:

* the **service discovery engine** (``manager.discovery``) — publish and
  search services in the UDDI registry,
* the **service editor** (``manager.editor``) — define composite services,
* the **service deployer** (``manager.deployer``) — generate routing
  tables and install coordinators/wrappers on provider hosts.

It also offers the end-to-end convenience flows the demo walks through:
register a provider's service (deploy + publish), define-and-deploy a
composite, and locate-and-execute an operation.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.deployment.deployer import CompositeDeployment, Deployer
from repro.deployment.placement import PlacementPolicy
from repro.discovery.engine import ServiceDiscoveryEngine
from repro.editor.drafts import CompositeDraft, ServiceEditor
from repro.expr import FunctionRegistry
from repro.net.transport import Transport
from repro.runtime.client import RuntimeClient
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import ExecutionResult
from repro.runtime.service_wrapper import ServiceWrapperRuntime
from repro.selection.policies import SelectionPolicy
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.elementary import ElementaryService


class ServiceManager:
    """Facade wiring editor, deployer and discovery over one transport."""

    def __init__(
        self,
        transport: Transport,
        registry: Optional[FunctionRegistry] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        self.transport = transport
        self.directory = ServiceDirectory()
        self.deployer = Deployer(
            transport, self.directory, registry=registry,
            placement=placement,
        )
        self.discovery = ServiceDiscoveryEngine(transport, self.directory)
        self.editor = ServiceEditor()
        self._clients: Dict[str, RuntimeClient] = {}

    # Provider flows ---------------------------------------------------------

    def register_elementary(
        self,
        service: ElementaryService,
        host: str,
        category: str = "",
        publish: bool = True,
        rng: Optional[random.Random] = None,
    ) -> ServiceWrapperRuntime:
        """Deploy an elementary service and (by default) publish it."""
        wrapper = self.deployer.deploy_elementary(service, host, rng=rng)
        if publish:
            self.discovery.publish(service.description, category=category)
        return wrapper

    def register_community(
        self,
        community: ServiceCommunity,
        host: str,
        policy: "Union[SelectionPolicy, str]" = "multi-attribute",
        category: str = "",
        publish: bool = True,
        timeout_ms: float = 1000.0,
    ) -> CommunityWrapperRuntime:
        """Deploy a community wrapper and (by default) publish it."""
        wrapper = self.deployer.deploy_community(
            community, host, policy=policy, timeout_ms=timeout_ms,
        )
        if publish:
            self.discovery.publish(community.description, category=category)
        return wrapper

    # Composer flows --------------------------------------------------------------

    def new_draft(
        self, name: str, provider: str = "", documentation: str = ""
    ) -> CompositeDraft:
        """Open the editor on a new composite draft."""
        return self.editor.new_draft(name, provider, documentation)

    def deploy_composite(
        self,
        composite: "Union[CompositeService, CompositeDraft]",
        host: str,
        category: str = "composite",
        publish: bool = True,
        default_timeout_ms: Optional[float] = None,
    ) -> CompositeDeployment:
        """Deploy (and by default publish) a composite service."""
        if isinstance(composite, CompositeDraft):
            composite = composite.build()
        deployment = self.deployer.deploy_composite(
            composite, host, default_timeout_ms=default_timeout_ms,
        )
        if publish:
            self.discovery.publish(
                composite.description, category=category,
            )
        return deployment

    # End-user flows ----------------------------------------------------------------

    def client(self, name: str, host: str) -> RuntimeClient:
        """Get (or create) a named end-user client on ``host``."""
        client = self._clients.get(name)
        if client is None:
            if not self.transport.has_node(host):
                self.transport.add_node(host)
            client = RuntimeClient(name, host, self.transport)
            client.install()
            self._clients[name] = client
        return client

    def locate_and_execute(
        self,
        client_name: str,
        client_host: str,
        service_name: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        timeout_ms: Optional[float] = 60_000.0,
    ) -> ExecutionResult:
        """The full Figure 3 flow: search UDDI, resolve binding, execute."""
        client = self.client(client_name, client_host)
        return self.discovery.execute(
            client, service_name, operation, arguments,
            timeout_ms=timeout_ms,
        )
