"""Service deployment: the Service Deployer of the architecture (Fig. 1).

"This process takes as input the XML description of the composite service
and involves two steps: (i) generating the control-flow routing tables of
each state of the composite service statechart, and (ii) uploading these
tables into the hosts of the component services." (paper §4)

:class:`Deployer` performs both steps against a transport: it installs
wrappers for elementary services, communities and composites, generates
and places routing tables, and instantiates one coordinator per table on
the chosen provider host.  With ``compile_plans`` (the default) it also
compiles each operation's placed tables into one shared
:class:`~repro.perf.CompiledRoutingPlan`, stored on the
:class:`CompositeDeployment` and consumed by every coordinator's hot
path.
"""

from repro.deployment.placement import (
    AdjacentPlacement,
    CompositeHostPlacement,
    PlacementPolicy,
)
from repro.deployment.deployer import CompositeDeployment, Deployer

__all__ = [
    "AdjacentPlacement",
    "CompositeDeployment",
    "CompositeHostPlacement",
    "Deployer",
    "PlacementPolicy",
]
