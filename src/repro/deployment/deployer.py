"""The Service Deployer."""

from __future__ import annotations

import random
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import DeploymentError
from repro.expr import FunctionRegistry
from repro.kernel.actor import ActorKernel
from repro.net.transport import Transport
from repro.perf.plan import CompiledRoutingPlan, compile_routing_plan
from repro.routing.generation import generate_routing_tables
from repro.routing.serialization import routing_tables_to_xml
from repro.routing.tables import (
    Postprocessing,
    RoutingTable,
)
from repro.resilience.runtime import ResilienceRuntime
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.composite_wrapper import CompositeWrapperRuntime
from repro.runtime.coordinator import Coordinator
from repro.runtime.directory import ServiceDirectory
from repro.runtime.service_wrapper import ServiceWrapperRuntime
from repro.selection.policies import SelectionPolicy, policy_by_name
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.elementary import ElementaryService
from repro.statecharts.flatten import FlatGraph, flatten
from repro.statecharts.validation import validate
from repro.deployment.placement import CompositeHostPlacement, PlacementPolicy


@dataclass
class CompositeDeployment:
    """Everything instantiated for one deployed composite service."""

    composite: CompositeService
    host: str
    wrapper: CompositeWrapperRuntime
    coordinators: Dict[str, "Dict[str, Coordinator]"] = field(
        default_factory=dict
    )  # operation -> node_id -> coordinator
    tables: Dict[str, "Dict[str, RoutingTable]"] = field(default_factory=dict)
    graphs: Dict[str, FlatGraph] = field(default_factory=dict)
    #: operation -> the deploy-time compiled dispatch plan shared by that
    #: operation's coordinators (``None`` entries when the deployer runs
    #: with ``compile_plans=False``).
    plans: Dict[str, "Optional[CompiledRoutingPlan]"] = field(
        default_factory=dict
    )

    @property
    def address(self) -> "Tuple[str, str]":
        """The ``(node, endpoint)`` clients execute against."""
        return self.host, self.wrapper.endpoint_name

    def coordinator_count(self) -> int:
        return sum(len(c) for c in self.coordinators.values())

    def tables_xml(self, operation: str) -> ET.Element:
        """The routing-tables XML document uploaded for ``operation``."""
        return routing_tables_to_xml(self.tables[operation])

    def hosts_used(self) -> "List[str]":
        hosts = {self.host}
        for per_op in self.coordinators.values():
            hosts.update(c.host for c in per_op.values())
        return sorted(hosts)

    def undeploy(self) -> None:
        """Remove every endpoint this deployment installed."""
        for per_op in self.coordinators.values():
            for coordinator in per_op.values():
                coordinator.uninstall()
        self.wrapper.uninstall()

    def describe(self) -> str:
        """Multi-line deployment report (the deployer's console output)."""
        lines = [
            f"composite {self.composite.name!r} deployed on {self.host!r}",
            f"  operations: {', '.join(self.composite.operations())}",
            f"  coordinators: {self.coordinator_count()} across "
            f"{len(self.hosts_used())} host(s)",
        ]
        for operation, per_op in self.coordinators.items():
            lines.append(f"  [{operation}]")
            for node_id in sorted(per_op):
                coordinator = per_op[node_id]
                lines.append(
                    f"    {node_id} @ {coordinator.host}"
                )
        return "\n".join(lines)


class Deployer:
    """Installs services, communities and composites onto a transport."""

    def __init__(
        self,
        transport: Transport,
        directory: Optional[ServiceDirectory] = None,
        registry: Optional[FunctionRegistry] = None,
        placement: Optional[PlacementPolicy] = None,
        resilience: "Optional[ResilienceRuntime]" = None,
        compile_plans: bool = True,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        self.transport = transport
        self.directory = directory or ServiceDirectory()
        self.registry = registry
        self.placement = placement or CompositeHostPlacement()
        #: The actor substrate every deployed participant runs on: one
        #: shared middleware chain and actor registry per deployer (the
        #: platform passes its own so all subsystems observe the same
        #: kernel).
        self.kernel = kernel if kernel is not None else ActorKernel(transport)
        #: When set, community wrappers deploy health-aware (breaker
        #: gating, status-ordered failover, resilience events).
        self.resilience = resilience
        #: Compile each operation's routing tables into one shared
        #: :class:`~repro.perf.CompiledRoutingPlan` at deploy time
        #: (``False`` = seed behaviour: coordinators re-derive their
        #: dispatch structures per firing).
        self.compile_plans = compile_plans
        #: The shard's :class:`~repro.durability.ShardDurability`, when
        #: durability is configured.  The deployer journals every
        #: deployment through it (so recovery can rebuild the topology)
        #: and hands service wrappers the effect ledger.
        self.durability = None

    def _ensure_node(self, host: str):
        if not self.transport.has_node(host):
            return self.transport.add_node(host)
        return self.transport.node(host)

    # Elementary services ---------------------------------------------------

    def deploy_elementary(
        self,
        service: ElementaryService,
        host: str,
        rng: Optional[random.Random] = None,
    ) -> ServiceWrapperRuntime:
        """Install ``service``'s wrapper on ``host`` and register it."""
        self._ensure_node(host)
        wrapper = ServiceWrapperRuntime(service, host, self.transport,
                                        rng=rng, kernel=self.kernel)
        wrapper.start()
        self.directory.register(service.name, host, wrapper.endpoint_name)
        dur = self.durability
        if dur is not None:
            wrapper.effects = dur.effects
            if not dur.suspended:
                # RNG state is captured *at deploy time*: redeploy hands
                # the wrapper a generator in exactly this state, and the
                # snapshot/replay path advances it from there.
                dur.journal.record_elementary(
                    service, host, wrapper.rng.getstate()
                )
        return wrapper

    # Communities ---------------------------------------------------------------

    def deploy_community(
        self,
        community: ServiceCommunity,
        host: str,
        policy: "SelectionPolicy | str" = "multi-attribute",
        timeout_ms: float = 1000.0,
        max_attempts: Optional[int] = None,
    ) -> CommunityWrapperRuntime:
        """Install ``community``'s wrapper on ``host``.

        Members must be deployed separately (they are ordinary services);
        the community resolves them through the shared directory at
        delegation time.
        """
        self._ensure_node(host)
        if isinstance(policy, str):
            policy = policy_by_name(policy)
        resilience = self.resilience
        wrapper = CommunityWrapperRuntime(
            community=community,
            policy=policy,
            host=host,
            transport=self.transport,
            directory=self.directory,
            timeout_ms=timeout_ms,
            max_attempts=max_attempts,
            health=resilience.health if resilience else None,
            breakers=resilience.breakers if resilience else None,
            events=resilience.events if resilience else None,
            kernel=self.kernel,
        )
        wrapper.start()
        self.directory.register(community.name, host, wrapper.endpoint_name)
        dur = self.durability
        if dur is not None and not dur.suspended:
            dur.journal.record_community(community, host, {
                "policy": policy,
                "timeout_ms": timeout_ms,
                "max_attempts": max_attempts,
            })
        return wrapper

    # Composite services ------------------------------------------------------------

    def deploy_composite(
        self,
        composite: CompositeService,
        host: str,
        default_timeout_ms: Optional[float] = None,
        validate_charts: bool = True,
        gc_finished_executions: bool = False,
    ) -> CompositeDeployment:
        """Generate routing tables, place and install all coordinators.

        Every component service referenced by the composite's statecharts
        must already be in the directory — the paper's flow registers
        components with the discovery engine before composition.
        """
        self._ensure_node(host)
        missing = [
            s for s in composite.component_services()
            if not self.directory.knows(s)
        ]
        if missing:
            raise DeploymentError(
                f"cannot deploy composite {composite.name!r}: component "
                f"service(s) {sorted(missing)!r} are not deployed"
            )

        entry_points: Dict[str, Tuple[str, str]] = {}
        all_tables: Dict[str, Dict[str, RoutingTable]] = {}
        all_graphs: Dict[str, FlatGraph] = {}
        all_plans: Dict[str, Optional[CompiledRoutingPlan]] = {}
        placed_tables: Dict[str, Dict[str, RoutingTable]] = {}
        event_targets: Dict[str, Dict[str, list]] = {}
        coordinator_locations: Dict[str, list] = {}

        for operation in composite.operations():
            chart = composite.chart_for(operation)
            if validate_charts:
                validate(chart)
            graph = flatten(chart)
            tables = generate_routing_tables(graph)
            hosts = self.placement.place(graph, host, self.directory)
            placed = self._assign_hosts(tables, hosts)
            all_tables[operation] = placed
            all_graphs[operation] = graph
            # The plan is compiled once, over the *placed* tables, so the
            # dispatch structures carry the peers' final host locations.
            all_plans[operation] = (
                compile_routing_plan(placed, composite.name, operation,
                                     self.registry)
                if self.compile_plans else None
            )
            placed_tables[operation] = placed
            entry = graph.initial_node()
            entry_points[operation] = (
                entry.node_id, placed[entry.node_id].host
            )
            # Static event knowledge: which coordinators consume which
            # ECA events, so the wrapper fans signals out precisely.
            per_event: Dict[str, list] = {}
            for node_id, table in placed.items():
                for event in table.consumed_events():
                    per_event.setdefault(event, []).append(
                        (node_id, table.host)
                    )
            event_targets[operation] = per_event
            coordinator_locations[operation] = [
                (node_id, table.host)
                for node_id, table in placed.items()
            ]

        wrapper = CompositeWrapperRuntime(
            composite=composite.name,
            host=host,
            transport=self.transport,
            entry_points=entry_points,
            output_specs={
                op: composite.description.operation(op)
                for op in composite.operations()
            },
            default_timeout_ms=default_timeout_ms,
            event_targets=event_targets,
            coordinator_locations=coordinator_locations,
            gc_finished_executions=gc_finished_executions,
            kernel=self.kernel,
        )
        wrapper.start()
        deployment = CompositeDeployment(
            composite=composite,
            host=host,
            wrapper=wrapper,
            tables=all_tables,
            graphs=all_graphs,
            plans=all_plans,
        )

        wrapper_address = (host, wrapper.endpoint_name)
        for operation, tables in placed_tables.items():
            installed: Dict[str, Coordinator] = {}
            plan = all_plans[operation]
            for node_id, table in tables.items():
                self._ensure_node(table.host)
                coordinator = Coordinator(
                    table=table,
                    composite=composite.name,
                    operation=operation,
                    host=table.host,
                    transport=self.transport,
                    directory=self.directory,
                    wrapper_address=wrapper_address,
                    registry=self.registry,
                    dispatch=(plan.dispatch_for(node_id)
                              if plan is not None else None),
                    kernel=self.kernel,
                )
                coordinator.start()
                installed[node_id] = coordinator
            deployment.coordinators[operation] = installed

        self.directory.register(composite.name, host, wrapper.endpoint_name)
        dur = self.durability
        if dur is not None and not dur.suspended:
            dur.journal.record_composite(composite, host, {
                "default_timeout_ms": default_timeout_ms,
                "validate_charts": validate_charts,
                "gc_finished_executions": gc_finished_executions,
            })
        return deployment

    @staticmethod
    def _assign_hosts(
        tables: "Dict[str, RoutingTable]", hosts: "Dict[str, str]"
    ) -> "Dict[str, RoutingTable]":
        """Fill the host of each table and of each postprocessing row.

        This is the "location" knowledge the paper says routing tables
        carry: each coordinator knows *where* its peers live, so no name
        resolution happens on the runtime path.
        """
        placed: Dict[str, RoutingTable] = {}
        for node_id, table in tables.items():
            rows = tuple(
                row.with_host(hosts[row.target_node])
                for row in table.postprocessing.rows
            )
            placed[node_id] = RoutingTable(
                node_id=table.node_id,
                kind=table.kind,
                precondition=table.precondition,
                postprocessing=Postprocessing(rows=rows),
                binding=table.binding,
                host=hosts[node_id],
            )
        return placed
