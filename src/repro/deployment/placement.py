"""Coordinator placement policies.

Task coordinators always live on the host of their component service —
that is the paper's model ("the administrator of the registered service
has to download and install [the] Coordinator [class]").  What is open is
where the *control* coordinators (fork/join/route/initial/final) live;
these policies decide, and the ablation benchmark compares them.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import DeploymentError
from repro.runtime.directory import ServiceDirectory
from repro.statecharts.flatten import FlatGraph, FlatNode, NodeKind


class PlacementPolicy:
    """Strategy: pick the host of every coordinator of a flat graph."""

    name = "abstract"

    def place(
        self,
        graph: FlatGraph,
        composite_host: str,
        directory: ServiceDirectory,
    ) -> "Dict[str, str]":
        """Return node_id -> host for *all* nodes of ``graph``."""
        raise NotImplementedError

    def _task_hosts(
        self, graph: FlatGraph, directory: ServiceDirectory
    ) -> "Dict[str, str]":
        hosts: Dict[str, str] = {}
        for node in graph.task_nodes():
            assert node.binding is not None
            if not directory.knows(node.binding.service):
                raise DeploymentError(
                    f"cannot place coordinator for {node.node_id!r}: "
                    f"component service {node.binding.service!r} is not "
                    f"deployed"
                )
            hosts[node.node_id] = directory.node_of(node.binding.service)
        return hosts


class CompositeHostPlacement(PlacementPolicy):
    """Control coordinators live with the composite's wrapper (default).

    Simple and always correct; the composite host becomes a mild hub for
    control messages, but task-to-task data flow stays peer-to-peer.
    """

    name = "composite-host"

    def place(
        self,
        graph: FlatGraph,
        composite_host: str,
        directory: ServiceDirectory,
    ) -> "Dict[str, str]":
        hosts = self._task_hosts(graph, directory)
        for node in graph.control_nodes():
            hosts[node.node_id] = composite_host
        return hosts


class AdjacentPlacement(PlacementPolicy):
    """Control coordinators are co-located with an adjacent task.

    Each control node moves to the host of the nearest *predecessor* task
    (falling back to a successor task, then the composite host).  This
    removes a network hop per control node on the common path, at the cost
    of spreading control state across providers.
    """

    name = "adjacent"

    def place(
        self,
        graph: FlatGraph,
        composite_host: str,
        directory: ServiceDirectory,
    ) -> "Dict[str, str]":
        hosts = self._task_hosts(graph, directory)
        # Iterate until stable: a ROUTE chain can be several nodes away
        # from the nearest task.
        pending = [n for n in graph.control_nodes()]
        max_rounds = len(graph.nodes) + 1
        for _round in range(max_rounds):
            unresolved = []
            for node in pending:
                host = self._adjacent_host(graph, node, hosts)
                if host is None:
                    unresolved.append(node)
                else:
                    hosts[node.node_id] = host
            if not unresolved:
                break
            if len(unresolved) == len(pending):
                # No progress: isolated control cluster; use composite host.
                for node in unresolved:
                    hosts[node.node_id] = composite_host
                break
            pending = unresolved
        return hosts

    @staticmethod
    def _adjacent_host(
        graph: FlatGraph, node: FlatNode, hosts: "Dict[str, str]"
    ) -> "str | None":
        for edge in graph.incoming(node.node_id):
            placed = hosts.get(edge.source)
            if placed is not None:
                return placed
        for edge in graph.outgoing(node.node_id):
            placed = hosts.get(edge.target)
            if placed is not None:
                return placed
        return None
