"""Plain-file storage of routing tables.

"By default, the XML documents containing the routing tables are stored
in plain files, so that there is no need to have a DBMS in the site where
the installation is performed." (paper §3)

The store mirrors the upload step: one directory per provider host, one
``<routing-tables>`` XML file per (composite, operation) holding exactly
the tables installed on that host.  A coordinator restarting on a host
can reload its knowledge from its own directory alone — no central
storage required.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List

from repro.exceptions import DeploymentError
from repro.routing.serialization import (
    routing_tables_from_xml,
    routing_tables_to_xml,
)
from repro.routing.tables import RoutingTable
from repro.xmlio import pretty_xml

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(text: str) -> str:
    """File-system-safe rendering of composite/operation/host names."""
    return _SAFE.sub("_", text) or "_"


class RoutingTableStore:
    """Reads and writes per-host routing-table files under a root dir."""

    def __init__(self, root: str) -> None:
        self.root = root

    def _file_path(self, host: str, composite: str, operation: str) -> str:
        return os.path.join(
            self.root, _safe_name(host),
            f"{_safe_name(composite)}.{_safe_name(operation)}.tables.xml",
        )

    # Writing ---------------------------------------------------------------

    def save_tables(
        self,
        composite: str,
        operation: str,
        tables: "Dict[str, RoutingTable]",
    ) -> "List[str]":
        """Partition ``tables`` by host and write one file per host.

        Returns the written file paths.  Tables must already be placed
        (hosts assigned by the deployer); an unplaced table is an error —
        a file without a location could never be uploaded anywhere.
        """
        by_host: Dict[str, Dict[str, RoutingTable]] = {}
        for node_id, table in tables.items():
            if not table.host:
                raise DeploymentError(
                    f"routing table for {node_id!r} has no host; deploy "
                    f"before saving"
                )
            by_host.setdefault(table.host, {})[node_id] = table
        written: List[str] = []
        for host, host_tables in sorted(by_host.items()):
            path = self._file_path(host, composite, operation)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            document = pretty_xml(routing_tables_to_xml(host_tables))
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(document)
            written.append(path)
        return written

    def save_deployment(self, deployment) -> "List[str]":
        """Persist every operation of a deployed composite."""
        written: List[str] = []
        for operation, tables in deployment.tables.items():
            written.extend(self.save_tables(
                deployment.composite.name, operation, tables,
            ))
        return written

    # Reading ---------------------------------------------------------------

    def load_tables(
        self, host: str, composite: str, operation: str
    ) -> "Dict[str, RoutingTable]":
        """Load the tables installed on ``host`` for one operation."""
        path = self._file_path(host, composite, operation)
        if not os.path.exists(path):
            raise DeploymentError(
                f"no routing tables stored for host {host!r}, composite "
                f"{composite!r}, operation {operation!r} under "
                f"{self.root!r}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return routing_tables_from_xml(handle.read())

    def hosts(self) -> "List[str]":
        """Host directories present in the store."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
        )

    def files_for_host(self, host: str) -> "List[str]":
        host_dir = os.path.join(self.root, _safe_name(host))
        if not os.path.isdir(host_dir):
            return []
        return sorted(
            os.path.join(host_dir, name)
            for name in os.listdir(host_dir)
            if name.endswith(".tables.xml")
        )
