"""Exception hierarchy for the SELF-SERV reproduction.

Every package raises subclasses of :class:`SelfServError` so that callers
can catch platform errors with a single ``except`` clause while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations


class SelfServError(Exception):
    """Base class of all errors raised by this library."""


class ExpressionError(SelfServError):
    """Base class for guard/ECA expression language errors."""


class TokenizeError(ExpressionError):
    """Raised when the expression tokenizer meets an unexpected character."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(ExpressionError):
    """Raised when the expression parser meets an unexpected token."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            super().__init__(f"{message} (at position {position})")
        else:
            super().__init__(message)
        self.position = position


class EvaluationError(ExpressionError):
    """Raised when evaluating a syntactically valid expression fails."""


class UnknownFunctionError(EvaluationError):
    """Raised when an expression calls a function absent from the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown function {name!r}")
        self.name = name


class UnboundVariableError(EvaluationError):
    """Raised when an expression references a variable with no binding."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unbound variable {name!r}")
        self.name = name


class XmlError(SelfServError):
    """Raised when an XML artefact cannot be read or is malformed."""


class StatechartError(SelfServError):
    """Base class for statechart model errors."""


class ValidationError(StatechartError):
    """Raised when a statechart fails structural validation.

    Carries the full list of problems so tools can report them all at once.
    """

    def __init__(self, problems: list) -> None:
        self.problems = list(problems)
        summary = "; ".join(str(p) for p in self.problems)
        super().__init__(f"invalid statechart: {summary}")


class ServiceError(SelfServError):
    """Base class for service-model errors."""


class OperationNotFoundError(ServiceError):
    """Raised when a service does not expose the requested operation."""

    def __init__(self, service: str, operation: str) -> None:
        super().__init__(f"service {service!r} has no operation {operation!r}")
        self.service = service
        self.operation = operation


class ParameterError(ServiceError):
    """Raised when operation arguments do not match the declared signature."""


class InvocationError(ServiceError):
    """Raised when a service invocation fails at the provider side."""


class CommunityError(ServiceError):
    """Base class for service-community errors."""


class NoMemberAvailableError(CommunityError):
    """Raised when a community cannot delegate a request to any member."""

    def __init__(self, community: str, operation: str) -> None:
        super().__init__(
            f"community {community!r} has no member able to serve "
            f"operation {operation!r}"
        )
        self.community = community
        self.operation = operation


class DiscoveryError(SelfServError):
    """Base class for UDDI/WSDL/SOAP discovery errors."""


class NotRegisteredError(DiscoveryError):
    """Raised when looking up an entity absent from the UDDI registry."""


class DuplicateRegistrationError(DiscoveryError):
    """Raised when publishing an entity whose key is already taken."""


class SoapFault(DiscoveryError):
    """A SOAP-level fault returned by a remote endpoint.

    Mirrors the ``faultcode``/``faultstring`` pair of SOAP 1.1.
    """

    def __init__(self, faultcode: str, faultstring: str) -> None:
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring


class ProtocolError(SelfServError):
    """Base class for wire-protocol (message envelope) errors."""


class EnvelopeError(ProtocolError):
    """Raised when a message body cannot be decoded into its envelope.

    Unknown body fields, missing structure and wrongly typed values all
    fail here — at the boundary — instead of surfacing as ``KeyError``
    or silent defaults deep inside a handler.
    """


class UnknownVerbError(ProtocolError):
    """Raised when no envelope type exists for a message kind."""

    def __init__(self, kind: str) -> None:
        super().__init__(f"no envelope registered for message kind {kind!r}")
        self.kind = kind


class TransportError(SelfServError):
    """Base class for messaging-substrate errors."""


class NodeUnreachableError(TransportError):
    """Raised when sending to a node that is failed or unknown."""

    def __init__(self, node: str) -> None:
        super().__init__(f"node {node!r} is unreachable")
        self.node = node


class WireError(TransportError):
    """Base class for socket wire-transport errors (``repro.net.wire``)."""


class WireProtocolError(WireError):
    """A byte stream violated the wire framing (bad magic, CRC mismatch,
    oversized or torn frame).  The connection that produced it can no
    longer be trusted to be frame-aligned and must be dropped."""


class WireCodecError(WireError):
    """A framed payload could not be encoded/decoded as a message
    (invalid JSON, missing header fields, or an envelope body the
    verb's codec rejects)."""


class RoutingError(SelfServError):
    """Base class for routing-table generation/consistency errors."""


class DeploymentError(SelfServError):
    """Raised when a composite service cannot be deployed."""


class ExecutionError(SelfServError):
    """Raised when a composite-service execution cannot complete."""


class ExecutionTimeoutError(ExecutionError):
    """Raised when an execution does not finish within its deadline."""


class SimulationError(SelfServError):
    """Raised on misuse of the discrete-event simulation substrate."""


class DurabilityError(SelfServError):
    """Raised on WAL/snapshot/recovery failures (``repro.durability``)."""
