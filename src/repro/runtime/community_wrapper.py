"""The wrapper variant for service communities.

A community's wrapper intercepts ``invoke`` envelopes, ranks the current
members with a selection policy, delegates to the best candidate, and on
fault *or timeout* fails over to the next one.  It records every outcome
in the community's execution history, closing the feedback loop the paper
describes ("the history of past executions and the status of ongoing
executions").

When deployed by a platform with resilience enabled, the wrapper also
consults the shared :class:`~repro.resilience.HealthRegistry` and
per-member circuit breakers: candidates are re-ordered so DOWN members
sink to the back of the failover list, members whose breaker is open are
skipped outright (no timeout paid — the breaker's half-open probes are
the path back into rotation), and every delegation outcome — including
timeouts, which only the wrapper can see — feeds the registry.  Failover
additionally re-validates each candidate at attempt time, so a member
suspended or constraint-excluded *after* ranking is never invoked.

Like every runtime participant it is a kernel
:class:`~repro.kernel.Actor`: the health registry's *passive* sampling
happens in the kernel's delivery taps, not here — the wrapper reports
only what no tap can see (timeouts, never-deployed members).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import NoMemberAvailableError
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import Invoke, InvokeResult
from repro.net.message import Message
from repro.net.transport import Transport
from repro.resilience.breaker import BreakerRegistry, BreakerState
from repro.resilience.events import EventKinds, ResilienceEventLog
from repro.resilience.health import HealthRegistry, ProviderStatus
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import wrapper_endpoint
from repro.selection.history import ExecutionHistory
from repro.selection.policies import SelectionPolicy, SelectionRequest
from repro.services.community import MemberRecord, ServiceCommunity


@dataclass
class _Delegation:
    """State of one in-progress community invocation."""

    invocation_id: str
    execution_id: str
    operation: str
    arguments: Dict[str, Any]
    reply_node: str
    reply_endpoint: str
    candidates: List[MemberRecord]
    next_index: int = 0
    attempts: int = 0
    current_member: str = ""
    started_ms: float = 0.0
    cancel_timeout: Optional[Callable[[], None]] = None
    settled: bool = False


class CommunityWrapperRuntime(Actor):
    """Runtime wrapper around one service community."""

    def __init__(
        self,
        community: ServiceCommunity,
        policy: SelectionPolicy,
        host: str,
        transport: Transport,
        directory: ServiceDirectory,
        history: Optional[ExecutionHistory] = None,
        timeout_ms: float = 1000.0,
        max_attempts: Optional[int] = None,
        health: Optional[HealthRegistry] = None,
        breakers: Optional[BreakerRegistry] = None,
        events: Optional[ResilienceEventLog] = None,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.community = community
        self.policy = policy
        self.directory = directory
        self.history = history or ExecutionHistory()
        self.timeout_ms = timeout_ms
        self.max_attempts = max_attempts
        self.health = health
        self.breakers = breakers
        self.events = events
        if health is not None and hasattr(policy, "bind_health"):
            policy.bind_health(health)
        # Per-wrapper, not module-global: delegation keys must replay
        # identically after crash recovery rebuilds the wrapper, and a
        # process-wide counter depends on unrelated platforms.  A plain
        # int (not itertools.count) so snapshots can capture and restore
        # the position.  The community name prefixes the key (below) so
        # member invocation ids stay unique across communities sharing
        # one execution.
        self.delegation_seq = 0
        self._delegations: Dict[str, _Delegation] = {}
        self._by_member_invocation: Dict[str, str] = {}
        self.delegated = 0
        self.failovers = 0
        self.skipped = 0

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.community.name)

    # Message handling ------------------------------------------------------

    @handles(Invoke)
    def _on_invoke(self, invoke: Invoke, message: Message) -> None:
        reply_node, reply_endpoint = message.reply_address()
        operation = invoke.operation
        arguments = dict(invoke.arguments)
        try:
            candidates = self.community.candidates(operation, arguments)
        except NoMemberAvailableError as exc:
            self._reply_fault(
                reply_node, reply_endpoint,
                invoke.invocation_id, invoke.execution_id,
                str(exc),
            )
            return
        ranked = self.policy.rank(
            candidates,
            SelectionRequest(operation=operation, arguments=arguments),
            self.history,
        )
        if self.health is not None or self.breakers is not None:
            ranked = self._order_candidates(ranked)
        delegation = _Delegation(
            invocation_id=invoke.invocation_id,
            execution_id=invoke.execution_id,
            operation=operation,
            arguments=arguments,
            reply_node=reply_node,
            reply_endpoint=reply_endpoint,
            candidates=ranked,
        )
        self.delegation_seq += 1
        key = f"{self.community.name}:d{self.delegation_seq}"
        self._delegations[key] = delegation
        self._try_next_member(key)

    def _order_candidates(
        self, ranked: "List[MemberRecord]"
    ) -> "List[MemberRecord]":
        """Health veto over the policy's preference (stable per band).

        DOWN members sink to the back of the failover list, so a dead
        provider is the last resort instead of the first timeout;
        breaker-refused members sink even further (the attempt loop will
        skip them outright).  A non-closed breaker that *would* admit a
        request right now resurfaces its member instead: that is the
        half-open probe finding its way back into rotation — without it,
        a recovered provider demoted to the back would never be
        re-tried.
        """
        now = self.transport.now_ms()

        def band(member: MemberRecord) -> int:
            if self.breakers is not None:
                breaker = self.breakers.breaker(member.service_name)
                if breaker.state != BreakerState.CLOSED:
                    return 0 if breaker.would_allow(now) else 3
            if (
                self.health is not None
                and self.health.status(member.service_name)
                == ProviderStatus.DOWN
            ):
                return 2
            return 0

        return sorted(ranked, key=band)

    def _skip_reason(self, delegation: _Delegation,
                     member: MemberRecord) -> str:
        """Why ``member`` must not be attempted right now ("" = attempt).

        Candidates were validated when the delegation was ranked, but
        membership is dynamic: a member suspended (or whose constraint
        stopped admitting the request) *after* ranking must not be
        re-tried on failover.  A member whose circuit breaker refuses the
        request is skipped too — no timeout paid for a known-dead
        endpoint; ``allow`` lets half-open probes through.
        """
        if not member.active:
            return "suspended"
        if delegation.arguments is not None and not member.serves(
            delegation.arguments
        ):
            return "constraint-excluded"
        if self.breakers is not None:
            breaker = self.breakers.breaker(member.service_name)
            if not breaker.allow(self.transport.now_ms()):
                return "breaker-open"
        return ""

    def _try_next_member(self, key: str) -> None:
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        budget = self.max_attempts or len(delegation.candidates)
        member: Optional[MemberRecord] = None
        while delegation.next_index < len(delegation.candidates):
            if delegation.attempts >= budget:
                break
            candidate = delegation.candidates[delegation.next_index]
            delegation.next_index += 1
            reason = self._skip_reason(delegation, candidate)
            if not reason:
                member = candidate
                break
            self.skipped += 1
            if self.events is not None:
                self.events.record(
                    self.transport.now_ms(), EventKinds.MEMBER_SKIPPED,
                    candidate.service_name,
                    f"{self.community.name}.{delegation.operation}: "
                    f"{reason}",
                )
        if member is None:
            reason = (
                "no healthy member available (all suspended, "
                "constraint-excluded or breaker-open)"
                if delegation.attempts == 0
                else f"all {delegation.attempts} attempted member(s) failed"
            )
            self._settle_fault(
                key,
                f"community {self.community.name!r}: {reason} for "
                f"operation {delegation.operation!r}",
            )
            return
        delegation.attempts += 1
        delegation.current_member = member.service_name
        delegation.started_ms = self.transport.now_ms()

        if not self.directory.knows(member.service_name):
            # Member never deployed — treat as an instant failure and move on.
            self._record_outcome(member.service_name, False, 0.0,
                                 on_wire=False)
            self._try_next_member(key)
            return

        member_node, member_endpoint = self.directory.resolve(
            member.service_name
        )
        member_invocation = f"{key}a{delegation.attempts}"
        self._by_member_invocation[member_invocation] = key
        self.history.record_start(member.service_name)
        self.delegated += 1
        if delegation.attempts > 1:
            self.failovers += 1
            if self.events is not None:
                self.events.record(
                    self.transport.now_ms(), EventKinds.FAILOVER,
                    member.service_name,
                    f"{self.community.name}.{delegation.operation}: "
                    f"attempt {delegation.attempts}",
                )

        self.send(member_node, member_endpoint, Invoke(
            invocation_id=member_invocation,
            execution_id=delegation.execution_id,
            operation=member.member_operation(delegation.operation),
            arguments=delegation.arguments,
        ))

        def on_timeout() -> None:
            self._on_member_timeout(key, member_invocation)

        delegation.cancel_timeout = self.transport.schedule(
            self.host, self.timeout_ms, on_timeout
        )

    def _record_outcome(
        self,
        member: str,
        ok: bool,
        duration_ms: float,
        on_wire: bool = True,
    ) -> None:
        """Feed one delegation outcome to history, health and breakers.

        Breakers are driven entirely from here (nothing else watches
        per-member outcomes).  The health registry's passive delivery
        tap already samples every *answered* invocation, so the wrapper
        reports to it only what the tap cannot see — timeouts and
        never-deployed members (``on_wire=False``); a dead provider
        never answers, and reporting its silence is what lets
        health-aware ordering demote it before the next request pays
        the same timeout.
        """
        self.history.record_end(member, ok, duration_ms)
        now = self.transport.now_ms()
        if self.health is not None and not on_wire:
            self.health.record(member, ok, duration_ms, now)
        if self.breakers is not None:
            breaker = self.breakers.breaker(member)
            if ok:
                breaker.record_success(now)
            else:
                breaker.record_failure(now)

    @handles(InvokeResult)
    def _on_member_result(
        self, result: InvokeResult, message: Message
    ) -> None:
        member_invocation = result.invocation_id
        key = self._by_member_invocation.pop(member_invocation, None)
        if key is None:
            return  # late reply after timeout-driven failover
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        if delegation.cancel_timeout is not None:
            delegation.cancel_timeout()
            delegation.cancel_timeout = None
        duration = self.transport.now_ms() - delegation.started_ms
        self._record_outcome(delegation.current_member, result.ok, duration)
        if result.ok:
            self._settle_success(key, result.outputs)
        else:
            self._try_next_member(key)

    def _on_member_timeout(self, key: str, member_invocation: str) -> None:
        if self._by_member_invocation.pop(member_invocation, None) is None:
            return  # result arrived first
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        duration = self.transport.now_ms() - delegation.started_ms
        if self.health is not None:
            # The timeout verdict stands: a result straggling in after
            # it must not be re-counted as a success by the passive tap.
            self.health.forget_invocation(member_invocation)
        self._record_outcome(delegation.current_member, False, duration,
                             on_wire=False)
        self._try_next_member(key)

    # Settling ------------------------------------------------------------------

    def _settle_success(self, key: str, outputs: "Dict[str, Any]") -> None:
        delegation = self._delegations.pop(key)
        delegation.settled = True
        self.send(
            delegation.reply_node, delegation.reply_endpoint,
            InvokeResult.outcome(
                delegation.invocation_id, delegation.execution_id,
                ok=True, outputs=outputs,
            ),
        )

    def _settle_fault(self, key: str, reason: str) -> None:
        delegation = self._delegations.pop(key)
        delegation.settled = True
        self._reply_fault(
            delegation.reply_node, delegation.reply_endpoint,
            delegation.invocation_id, delegation.execution_id, reason,
        )

    def _reply_fault(
        self,
        node: str,
        endpoint: str,
        invocation_id: str,
        execution_id: str,
        reason: str,
    ) -> None:
        self.send(node, endpoint, InvokeResult.outcome(
            invocation_id, execution_id, ok=False, fault=reason,
        ))
