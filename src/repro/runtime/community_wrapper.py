"""The wrapper variant for service communities.

A community's wrapper intercepts ``invoke`` messages, ranks the current
members with a selection policy, delegates to the best candidate, and on
fault *or timeout* fails over to the next one.  It records every outcome
in the community's execution history, closing the feedback loop the paper
describes ("the history of past executions and the status of ongoing
executions").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import NoMemberAvailableError
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import (
    MessageKinds,
    invoke_body,
    invoke_result_body,
    wrapper_endpoint,
)
from repro.selection.history import ExecutionHistory
from repro.selection.policies import SelectionPolicy, SelectionRequest
from repro.services.community import MemberRecord, ServiceCommunity

_delegation_ids = itertools.count(1)


@dataclass
class _Delegation:
    """State of one in-progress community invocation."""

    invocation_id: str
    execution_id: str
    operation: str
    arguments: Dict[str, Any]
    reply_node: str
    reply_endpoint: str
    candidates: List[MemberRecord]
    next_index: int = 0
    attempts: int = 0
    current_member: str = ""
    started_ms: float = 0.0
    cancel_timeout: Optional[Callable[[], None]] = None
    settled: bool = False


class CommunityWrapperRuntime:
    """Runtime wrapper around one service community."""

    def __init__(
        self,
        community: ServiceCommunity,
        policy: SelectionPolicy,
        host: str,
        transport: Transport,
        directory: ServiceDirectory,
        history: Optional[ExecutionHistory] = None,
        timeout_ms: float = 1000.0,
        max_attempts: Optional[int] = None,
    ) -> None:
        self.community = community
        self.policy = policy
        self.host = host
        self.transport = transport
        self.directory = directory
        self.history = history or ExecutionHistory()
        self.timeout_ms = timeout_ms
        self.max_attempts = max_attempts
        self._delegations: Dict[str, _Delegation] = {}
        self._by_member_invocation: Dict[str, str] = {}
        self.delegated = 0
        self.failovers = 0

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.community.name)

    def install(self) -> None:
        self.transport.node(self.host).register(
            self.endpoint_name, self.on_message
        )

    def uninstall(self) -> None:
        self.transport.node(self.host).unregister(self.endpoint_name)

    # Message handling ------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == MessageKinds.INVOKE:
            self._on_invoke(message)
        elif message.kind == MessageKinds.INVOKE_RESULT:
            self._on_member_result(message)

    def _on_invoke(self, message: Message) -> None:
        body = message.body
        reply_node, reply_endpoint = message.reply_address()
        operation = body.get("operation", "")
        arguments = dict(body.get("arguments", {}))
        try:
            candidates = self.community.candidates(operation, arguments)
        except NoMemberAvailableError as exc:
            self._reply_fault(
                reply_node, reply_endpoint,
                body.get("invocation_id", ""), body.get("execution_id", ""),
                str(exc),
            )
            return
        ranked = self.policy.rank(
            candidates,
            SelectionRequest(operation=operation, arguments=arguments),
            self.history,
        )
        delegation = _Delegation(
            invocation_id=body.get("invocation_id", ""),
            execution_id=body.get("execution_id", ""),
            operation=operation,
            arguments=arguments,
            reply_node=reply_node,
            reply_endpoint=reply_endpoint,
            candidates=ranked,
        )
        key = f"d{next(_delegation_ids)}"
        self._delegations[key] = delegation
        self._try_next_member(key)

    def _try_next_member(self, key: str) -> None:
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        budget = self.max_attempts or len(delegation.candidates)
        if (
            delegation.next_index >= len(delegation.candidates)
            or delegation.attempts >= budget
        ):
            self._settle_fault(
                key,
                f"community {self.community.name!r}: all "
                f"{delegation.attempts} attempted member(s) failed for "
                f"operation {delegation.operation!r}",
            )
            return
        member = delegation.candidates[delegation.next_index]
        delegation.next_index += 1
        delegation.attempts += 1
        delegation.current_member = member.service_name
        delegation.started_ms = self.transport.now_ms()

        if not self.directory.knows(member.service_name):
            # Member never deployed — treat as an instant failure and move on.
            self.history.record_end(member.service_name, False, 0.0)
            self._try_next_member(key)
            return

        member_node, member_endpoint = self.directory.resolve(
            member.service_name
        )
        member_invocation = f"{key}a{delegation.attempts}"
        self._by_member_invocation[member_invocation] = key
        self.history.record_start(member.service_name)
        self.delegated += 1
        if delegation.attempts > 1:
            self.failovers += 1

        self.transport.send(Message(
            kind=MessageKinds.INVOKE,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=member_node,
            target_endpoint=member_endpoint,
            body=invoke_body(
                member_invocation,
                delegation.execution_id,
                member.member_operation(delegation.operation),
                delegation.arguments,
            ),
        ))

        def on_timeout() -> None:
            self._on_member_timeout(key, member_invocation)

        delegation.cancel_timeout = self.transport.schedule(
            self.host, self.timeout_ms, on_timeout
        )

    def _on_member_result(self, message: Message) -> None:
        body = message.body
        member_invocation = body.get("invocation_id", "")
        key = self._by_member_invocation.pop(member_invocation, None)
        if key is None:
            return  # late reply after timeout-driven failover
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        if delegation.cancel_timeout is not None:
            delegation.cancel_timeout()
            delegation.cancel_timeout = None
        duration = self.transport.now_ms() - delegation.started_ms
        ok = body.get("status") == "success"
        self.history.record_end(delegation.current_member, ok, duration)
        if ok:
            self._settle_success(key, body.get("outputs", {}))
        else:
            self._try_next_member(key)

    def _on_member_timeout(self, key: str, member_invocation: str) -> None:
        if self._by_member_invocation.pop(member_invocation, None) is None:
            return  # result arrived first
        delegation = self._delegations.get(key)
        if delegation is None or delegation.settled:
            return
        duration = self.transport.now_ms() - delegation.started_ms
        self.history.record_end(delegation.current_member, False, duration)
        self._try_next_member(key)

    # Settling ------------------------------------------------------------------

    def _settle_success(self, key: str, outputs: "Dict[str, Any]") -> None:
        delegation = self._delegations.pop(key)
        delegation.settled = True
        self.transport.send(Message(
            kind=MessageKinds.INVOKE_RESULT,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=delegation.reply_node,
            target_endpoint=delegation.reply_endpoint,
            body=invoke_result_body(
                delegation.invocation_id, delegation.execution_id,
                ok=True, outputs=outputs,
            ),
        ))

    def _settle_fault(self, key: str, reason: str) -> None:
        delegation = self._delegations.pop(key)
        delegation.settled = True
        self._reply_fault(
            delegation.reply_node, delegation.reply_endpoint,
            delegation.invocation_id, delegation.execution_id, reason,
        )

    def _reply_fault(
        self,
        node: str,
        endpoint: str,
        invocation_id: str,
        execution_id: str,
        reason: str,
    ) -> None:
        self.transport.send(Message(
            kind=MessageKinds.INVOKE_RESULT,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=node,
            target_endpoint=endpoint,
            body=invoke_result_body(
                invocation_id, execution_id, ok=False, fault=reason,
            ),
        ))
