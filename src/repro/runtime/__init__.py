"""Peer-to-peer execution runtime.

This package implements the paper's execution model: "the orchestration of
the composite service execution is carried out through peer-to-peer
message exchanges between the coordinators" (paper §4).  Every
participant here is an :class:`~repro.kernel.Actor` on the shared
``repro.kernel`` substrate — typed envelopes, declarative verb dispatch,
kernel-owned mailboxes and one middleware chain — so the classes below
contain only their *own* protocol logic.  The pieces:

* :class:`Coordinator` — one per state/flat-node, installed on a provider
  host; matches notifications against its routing-table precondition,
  invokes its service through the local wrapper, and notifies its peers
  per the postprocessing rows,
* :class:`ServiceWrapperRuntime` — the ``Wrapper`` class providers install
  next to their elementary service,
* :class:`CommunityWrapperRuntime` — the wrapper variant for communities:
  selects a member by policy and fails over on fault/timeout,
* :class:`CompositeWrapperRuntime` — the composite service's wrapper:
  accepts execute requests, seeds the statechart's entry coordinator,
  collects termination notifications, enforces deadlines,
* :class:`RuntimeClient` — the end-user side of Figure 3's Execute button,
* :class:`ServiceDirectory` — name-to-host resolution (the runtime slice
  of the discovery engine's knowledge).
"""

from repro.runtime.protocol import (
    ExecutionResult,
    MessageKinds,
    client_endpoint,
    coordinator_endpoint,
    wrapper_endpoint,
)
from repro.runtime.directory import ServiceDirectory
from repro.runtime.coordinator import Coordinator
from repro.runtime.service_wrapper import ServiceWrapperRuntime
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.composite_wrapper import (
    CompositeWrapperRuntime,
    ExecutionRecord,
)
from repro.runtime.client import RuntimeClient

__all__ = [
    "CommunityWrapperRuntime",
    "CompositeWrapperRuntime",
    "Coordinator",
    "ExecutionRecord",
    "ExecutionResult",
    "MessageKinds",
    "RuntimeClient",
    "ServiceDirectory",
    "ServiceWrapperRuntime",
    "client_endpoint",
    "coordinator_endpoint",
    "wrapper_endpoint",
]
