"""Service directory: runtime name-to-location resolution.

The UDDI registry knows *descriptions*; the runtime needs *locations*
(which node hosts which service wrapper).  The deployer records locations
here as it installs wrappers; coordinators and orchestrators resolve
through it at invocation time, which is what lets a community re-point a
logical service name at a different member between executions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import DeploymentError
from repro.runtime.protocol import wrapper_endpoint


class ServiceDirectory:
    """Maps service names to ``(node_id, endpoint)`` addresses."""

    def __init__(self) -> None:
        self._locations: Dict[str, Tuple[str, str]] = {}
        #: Monotonic mutation counter: bumped by every (re)registration
        #: and unregistration.  The discovery engine's ``locate()`` cache
        #: checks it per lookup, so a redeployed service is never served
        #: from a stale cached binding.
        self.generation = 0

    def register(
        self, service: str, node_id: str, endpoint: str = ""
    ) -> None:
        """Record where ``service``'s wrapper lives.

        Re-registration overwrites: a service may be redeployed to a new
        host, and latest-wins matches UDDI's update semantics.
        """
        self._locations[service] = (
            node_id, endpoint or wrapper_endpoint(service)
        )
        self.generation += 1

    def unregister(self, service: str) -> None:
        if service not in self._locations:
            raise DeploymentError(
                f"service {service!r} is not in the directory"
            )
        del self._locations[service]
        self.generation += 1

    def resolve(self, service: str) -> "Tuple[str, str]":
        """Return ``(node_id, endpoint)`` for ``service``; raise if absent."""
        location = self._locations.get(service)
        if location is None:
            raise DeploymentError(
                f"service {service!r} has no registered location; was it "
                f"deployed?"
            )
        return location

    def knows(self, service: str) -> bool:
        return service in self._locations

    def services(self) -> "List[str]":
        return sorted(self._locations.keys())

    def node_of(self, service: str) -> str:
        return self.resolve(service)[0]
