"""Coordinators: the peer components that orchestrate execution.

"Coordinators are attached to each state of a composite service.  They are
in charge of initiating, controlling, monitoring the associated state, and
collaborating with their peers to manage the service execution."
(paper §2)

A coordinator's entire runtime logic is:

1. **Precondition matching** — record each incoming ``notify`` and check
   the routing table's precondition (``ANY``: every notification triggers
   a firing; ``ALL``: a firing triggers when every expected edge has an
   outstanding notification, consuming one from each — the AND-join).
2. **Invocation** — for a TASK node, evaluate the input-mapping
   expressions over the token's environment and ``invoke`` the component
   service through its wrapper; control nodes skip straight to step 3.
3. **Postprocessing** — evaluate each routing row's guard over the
   (possibly output-enriched) environment, apply the row's ECA actions,
   and ``notify`` the target coordinators.  FORK rows fire always; a
   FINAL node reports ``complete`` to the composite wrapper instead.

There is deliberately *no* scheduling algorithm here — everything the
coordinator consults was precomputed into the routing table, which is the
paper's central design claim.  The coordinator is a kernel
:class:`~repro.kernel.Actor`: message handling, envelope decoding and
the middleware taps are kernel machinery; only the three steps above are
coordinator code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import ExpressionError
from repro.expr import CompiledExpression, FunctionRegistry
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import (
    Complete,
    Discard,
    ExecutionFault,
    Invoke,
    InvokeResult,
    Notify,
    Signal,
)
from repro.net.message import Message
from repro.net.transport import Transport
from repro.routing.tables import FiringMode, PostprocessingRow, RoutingTable

if TYPE_CHECKING:  # import would cycle through repro.runtime's package init
    from repro.perf.plan import CoordinatorDispatch
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import coordinator_endpoint
from repro.statecharts.flatten import NodeKind


@dataclass
class _ExecutionState:
    """Per-execution bookkeeping at one coordinator."""

    edge_counts: Dict[str, int] = field(default_factory=dict)
    env: Dict[str, Any] = field(default_factory=dict)
    firings: int = 0


@dataclass
class _WaitingToken:
    """A completed firing parked until one of its ECA events arrives."""

    execution_id: str
    env: Dict[str, Any]
    consumed: bool = False


class Coordinator(Actor):
    """The runtime agent of one flat-graph node."""

    def __init__(
        self,
        table: RoutingTable,
        composite: str,
        operation: str,
        host: str,
        transport: Transport,
        directory: ServiceDirectory,
        wrapper_address: "Tuple[str, str]",
        registry: Optional[FunctionRegistry] = None,
        dispatch: "Optional[CoordinatorDispatch]" = None,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.table = table
        self.composite = composite
        self.operation = operation
        self.directory = directory
        self.wrapper_address = wrapper_address
        self._registry = registry
        #: Deploy-time compiled dispatch structure (``repro.perf``): when
        #: present, the hot paths below use its precomputed row
        #: partitions, join edge sets and interned peer endpoints instead
        #: of re-deriving them per notification.  ``None`` keeps the
        #: seed's derive-per-firing behaviour (the benchmark baseline).
        self._dispatch = dispatch
        # Per-coordinator, not module-global: invocation ids must come
        # out identical when a recovered coordinator re-runs the same
        # deliveries (durability replay), and a process-wide counter
        # depends on every other platform in the process.  A plain int
        # (not itertools.count) so snapshots can capture and restore the
        # position.  Uniqueness holds because the id is prefixed with
        # the node id and one execution only ever crosses one
        # composite's coordinators.
        self.invocation_seq = 0
        self._executions: Dict[str, _ExecutionState] = {}
        self._waiting_tokens: "Dict[str, list]" = {}
        # Signals that arrived before any token was parked to consume
        # them: (event, payload) pairs per execution.  Distributed
        # emission races make buffering necessary — a region may produce
        # an event before its consumer's task completes.
        self._buffered_signals: "Dict[str, list]" = {}
        self._pending_invocations: Dict[str, "Tuple[str, Dict[str, Any]]"] = {}
        self._compiled_guards: "Mapping[str, Optional[CompiledExpression]]"
        self._compiled_actions: (
            "Mapping[str, Tuple[Tuple[str, CompiledExpression], ...]]"
        )
        self._compiled_inputs: "Mapping[str, CompiledExpression]"
        if dispatch is None:
            # One source of truth for guard/action/input compilation:
            # the seed path differs from the compiled one only in the
            # hot-path structures it re-derives per firing, never in
            # how expressions are classified and compiled.
            from repro.perf.plan import compile_dispatch  # import here:
            # a module-level import would cycle through repro.runtime's
            # package init.  self._dispatch stays None, so the hot path
            # keeps deriving its structures per firing (seed baseline).
            dispatch = compile_dispatch(table, composite, operation,
                                        registry)
        self._compiled_guards = dispatch.guards
        self._compiled_actions = dispatch.actions
        self._compiled_inputs = dispatch.input_exprs
        #: Fused immediate-row plan (compiled path only): one tuple per
        #: immediate row carrying everything a firing needs — the row,
        #: its guard (``None`` when it always fires), its action list
        #: and the fully resolved peer address — so the hot loop in
        #: :meth:`_postprocess` runs without per-firing mapping lookups.
        #: ``None`` on the seed path keeps that branch byte-identical.
        self._fused_immediate = None
        if self._dispatch is not None:
            self._fused_immediate = tuple(
                (
                    row,
                    None
                    if row.fire_always or dispatch.guards[row.edge_id] is None
                    else dispatch.guards[row.edge_id],
                    dispatch.actions[row.edge_id],
                    dispatch.notify_targets[row.edge_id][0] or host,
                    dispatch.notify_targets[row.edge_id][1],
                )
                for row in dispatch.immediate_rows
            )

    # Wiring ------------------------------------------------------------------

    @property
    def endpoint_name(self) -> str:
        return coordinator_endpoint(
            self.composite, self.operation, self.table.node_id
        )

    # Message handling -----------------------------------------------------------

    @handles(Notify)
    def _on_notify(self, notify: Notify, message: Message) -> None:
        execution_id = notify.execution_id
        state = self._executions.setdefault(execution_id, _ExecutionState())
        state.env.update(notify.env)
        state.edge_counts[notify.edge_id] = (
            state.edge_counts.get(notify.edge_id, 0) + 1
        )

        if self.table.precondition.mode is FiringMode.ANY:
            # Each notification is one token: fire once per arrival.
            self._fire(execution_id, dict(state.env))
            state.firings += 1
        else:
            self._try_fire_join(execution_id, state)

    def _try_fire_join(
        self, execution_id: str, state: _ExecutionState
    ) -> None:
        expected = (
            self._dispatch.expected_edges if self._dispatch is not None
            else [e.edge_id for e in self.table.precondition.entries]
        )
        if not expected:
            self._fire(execution_id, dict(state.env))
            state.firings += 1
            return
        if all(state.edge_counts.get(edge, 0) >= 1 for edge in expected):
            for edge in expected:
                state.edge_counts[edge] -= 1
            self._fire(execution_id, dict(state.env))
            state.firings += 1

    # Firing ------------------------------------------------------------------

    def _fire(self, execution_id: str, env: "Dict[str, Any]") -> None:
        if self.table.kind is NodeKind.TASK:
            self._invoke_service(execution_id, env)
        elif self.table.kind is NodeKind.FINAL:
            self._report_complete(execution_id, env)
        else:
            self._postprocess(execution_id, env)

    def _invoke_service(
        self, execution_id: str, env: "Dict[str, Any]"
    ) -> None:
        binding = self.table.binding
        assert binding is not None
        try:
            arguments = {
                parameter: compiled.value(env)
                for parameter, compiled in self._compiled_inputs.items()
            }
        except ExpressionError as exc:
            self._report_fault(
                execution_id,
                f"input mapping of {self.table.node_id!r} failed: {exc}",
            )
            return
        try:
            target_node, target_endpoint = self.directory.resolve(
                binding.service
            )
        except Exception as exc:  # DeploymentError
            self._report_fault(execution_id, str(exc))
            return
        self.invocation_seq += 1
        invocation_id = f"{self.table.node_id}-{self.invocation_seq}"
        self._pending_invocations[invocation_id] = (execution_id, env)
        self.send(target_node, target_endpoint, Invoke(
            invocation_id=invocation_id,
            execution_id=execution_id,
            operation=binding.operation,
            arguments=arguments,
        ))

    @handles(InvokeResult)
    def _on_invoke_result(
        self, result: InvokeResult, message: Message
    ) -> None:
        pending = self._pending_invocations.pop(result.invocation_id, None)
        if pending is None:
            return  # stale/duplicate result
        execution_id, env = pending
        if not result.ok:
            binding = self.table.binding
            service = binding.service if binding else "?"
            self._report_fault(
                execution_id,
                f"invocation of {service!r} at {self.table.node_id!r} "
                f"failed: {result.fault or 'unknown fault'}",
            )
            return
        binding = self.table.binding
        assert binding is not None
        outputs = result.outputs
        for variable, parameter in binding.output_mapping.items():
            env[variable] = outputs.get(parameter)
        self._postprocess(execution_id, env)

    def _postprocess(self, execution_id: str, env: "Dict[str, Any]") -> None:
        """Route one completed firing.

        Immediate rows (no ECA event) are evaluated now.  If none fires
        and the table has event-consuming rows, the token parks until a
        matching :meth:`signal <_on_signal>` arrives — the E part of the
        ECA rule.  A completion transition that is enabled wins over
        waiting for events, the usual statechart priority.
        """
        fused = self._fused_immediate
        if fused is not None:
            event_rows = self._dispatch.event_rows
            node_id = self.table.node_id
            fired = 0
            for row, guard, actions, peer_host, peer_endpoint in fused:
                try:
                    if guard is not None and not guard(env):
                        continue
                    if actions:
                        out_env = dict(env)
                        for target, compiled in actions:
                            out_env[target] = compiled.value(env)
                    else:
                        out_env = env
                except ExpressionError as exc:
                    self._report_fault(
                        execution_id,
                        f"routing at {node_id!r} edge "
                        f"{row.edge_id!r} failed: {exc}",
                    )
                    return
                fired += 1
                self.send(peer_host, peer_endpoint, Notify(
                    execution_id=execution_id,
                    edge_id=row.edge_id,
                    from_node=node_id,
                    env=out_env,
                ))
                if row.emits:
                    self._emit_events(execution_id, row)
            if fired == 0 and event_rows:
                self._waiting_tokens.setdefault(execution_id, []).append(
                    _WaitingToken(execution_id=execution_id, env=dict(env))
                )
                self._replay_buffered(execution_id)
                return
            if fired == 0 and self.table.postprocessing.rows:
                self._report_fault(
                    execution_id,
                    f"no routing guard matched at {node_id!r}",
                )
            return
        immediate = [
            row for row in self.table.postprocessing.rows if not row.event
        ]
        event_rows = [
            row for row in self.table.postprocessing.rows if row.event
        ]
        fired = 0
        for row in immediate:
            try:
                if not self._row_matches(row, env):
                    continue
                out_env = self._apply_actions(row, env)
            except ExpressionError as exc:
                self._report_fault(
                    execution_id,
                    f"routing at {self.table.node_id!r} edge "
                    f"{row.edge_id!r} failed: {exc}",
                )
                return
            fired += 1
            self._notify_peer(execution_id, row, out_env)
            self._emit_events(execution_id, row)
        if fired == 0 and event_rows:
            self._waiting_tokens.setdefault(execution_id, []).append(
                _WaitingToken(execution_id=execution_id, env=dict(env))
            )
            self._replay_buffered(execution_id)
            return
        if fired == 0 and self.table.postprocessing.rows:
            self._report_fault(
                execution_id,
                f"no routing guard matched at {self.table.node_id!r}",
            )

    def _emit_events(self, execution_id: str, row) -> None:
        """Produce the row's events (paper: 'produced events').

        Emissions route through the composite wrapper, which holds the
        static map of which coordinators consume which events and fans
        the signal out precisely.
        """
        if not row.emits:
            return
        node, endpoint = self.wrapper_address
        for event in row.emits:
            self.send(node, endpoint, Signal(
                execution_id=execution_id, event=event, payload={},
            ))

    @handles(Signal)
    def _on_signal(self, signal: Signal, message: Message) -> None:
        """Consume an ECA event: wake matching parked tokens.

        A signal that finds no parked token (yet) is buffered and
        replayed when one parks — emissions and completions race freely
        across the network.
        """
        execution_id = signal.execution_id
        event = signal.event
        if self._dispatch is not None:
            if event not in self._dispatch.consumed_events:
                return
        elif not any(
            row.event == event for row in self.table.postprocessing.rows
        ):
            return
        if not self._try_consume(execution_id, event, signal.payload):
            self._buffered_signals.setdefault(execution_id, []).append(
                (event, dict(signal.payload))
            )

    def _try_consume(
        self, execution_id: str, event: str, payload: "Dict[str, Any]"
    ) -> bool:
        """Wake parked tokens with ``event``; returns whether any fired."""
        tokens = self._waiting_tokens.get(execution_id, [])
        if self._dispatch is not None:
            event_rows = self._dispatch.rows_by_event.get(event, ())
        else:
            event_rows = [
                row for row in self.table.postprocessing.rows
                if row.event == event
            ]
        consumed_any = False
        for token in tokens:
            if token.consumed:
                continue
            token.env.update(payload)
            fired = 0
            for row in event_rows:
                try:
                    if not self._row_matches(row, token.env):
                        continue
                    out_env = self._apply_actions(row, token.env)
                except ExpressionError as exc:
                    token.consumed = True
                    self._report_fault(
                        execution_id,
                        f"routing at {self.table.node_id!r} edge "
                        f"{row.edge_id!r} failed: {exc}",
                    )
                    return True
                fired += 1
                self._notify_peer(execution_id, row, out_env)
                self._emit_events(execution_id, row)
            if fired:
                token.consumed = True
                consumed_any = True
        self._waiting_tokens[execution_id] = [
            t for t in tokens if not t.consumed
        ]
        return consumed_any

    def _replay_buffered(self, execution_id: str) -> None:
        """Offer buffered signals to a freshly parked token."""
        buffered = self._buffered_signals.get(execution_id, [])
        remaining = []
        for event, payload in buffered:
            if not self._try_consume(execution_id, event, payload):
                remaining.append((event, payload))
        if remaining:
            self._buffered_signals[execution_id] = remaining
        else:
            self._buffered_signals.pop(execution_id, None)

    def waiting_token_count(self, execution_id: str) -> int:
        """Tokens parked on events for one execution (diagnostics)."""
        return len(self._waiting_tokens.get(execution_id, []))

    def _row_matches(
        self, row: PostprocessingRow, env: "Dict[str, Any]"
    ) -> bool:
        compiled = self._compiled_guards[row.edge_id]
        if row.fire_always or compiled is None:
            return True
        return compiled(env)

    def _apply_actions(
        self, row: PostprocessingRow, env: "Dict[str, Any]"
    ) -> "Dict[str, Any]":
        actions = self._compiled_actions[row.edge_id]
        if not actions:
            return env
        out_env = dict(env)
        for target, compiled in actions:
            out_env[target] = compiled.value(env)
        return out_env

    def _notify_peer(
        self,
        execution_id: str,
        row: PostprocessingRow,
        env: "Dict[str, Any]",
    ) -> None:
        if self._dispatch is not None:
            target_host, target_endpoint = (
                self._dispatch.notify_targets[row.edge_id]
            )
            target_host = target_host or self.host
        else:
            target_host = row.target_host or self.host
            target_endpoint = coordinator_endpoint(
                self.composite, self.operation, row.target_node
            )
        self.send(target_host, target_endpoint, Notify(
            execution_id=execution_id,
            edge_id=row.edge_id,
            from_node=self.table.node_id,
            env=env,
        ))

    # Reporting back to the composite wrapper ------------------------------------

    def _report_complete(
        self, execution_id: str, env: "Dict[str, Any]"
    ) -> None:
        node, endpoint = self.wrapper_address
        self.send(node, endpoint, Complete(
            execution_id=execution_id,
            final_node=self.table.node_id,
            env=env,
        ))

    def _report_fault(self, execution_id: str, reason: str) -> None:
        node, endpoint = self.wrapper_address
        self.send(node, endpoint, ExecutionFault(
            execution_id=execution_id,
            node=self.table.node_id,
            reason=reason,
        ))

    # Diagnostics -----------------------------------------------------------------

    def executions_seen(self) -> int:
        return len(self._executions)

    @handles(Discard)
    def _on_discard(self, discard: Discard, message: Message) -> None:
        self.discard_execution(discard.execution_id)

    def discard_execution(self, execution_id: str) -> None:
        """Drop per-execution state (wrapper-driven garbage collection)."""
        self._executions.pop(execution_id, None)
        self._waiting_tokens.pop(execution_id, None)
        self._buffered_signals.pop(execution_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Coordinator({self.table.node_id!r} @ {self.host!r}, "
            f"{self.composite}.{self.operation})"
        )
