"""The composite service's own wrapper.

"When the wrapper of the composite service receives the document, it sends
a message to the coordinator of the state(s) in the statechart which
need(s) to be entered in the first place. [...] Eventually, the
coordinators of the states which are exited in the last place send their
notification of termination back to the composite service wrapper."
(paper §4)

The composite wrapper is a kernel :class:`~repro.kernel.Actor` that:
accepts ``execute`` envelopes, seeds the entry coordinator with a start
token, waits for ``complete`` (or ``execution_fault``), enforces an
optional execution deadline, and answers the client with
``execute_result``.  It also keeps an execution log that
examples/benchmarks read.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import (
    Complete,
    Discard,
    Execute,
    ExecuteAck,
    ExecuteResult,
    ExecutionFault,
    Notify,
    Signal,
)
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import (
    START_EDGE,
    WRAPPER_NODE,
    coordinator_endpoint,
    wrapper_endpoint,
)
from repro.services.description import OperationSpec


@dataclass
class ExecutionRecord:
    """One composite execution as tracked by the wrapper."""

    execution_id: str
    operation: str
    arguments: Dict[str, Any]
    client_node: str
    client_endpoint: str
    status: str = "running"  # running | success | fault | timeout
    outputs: Dict[str, Any] = field(default_factory=dict)
    fault: str = ""
    request_key: str = ""
    started_ms: float = 0.0
    finished_ms: float = 0.0
    cancel_deadline: Optional[Callable[[], None]] = None

    @property
    def finished(self) -> bool:
        return self.status != "running"

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms


class CompositeWrapperRuntime(Actor):
    """Runtime wrapper of a deployed composite-service operation set.

    ``entry_points`` maps each operation name to the ``(entry_node_id,
    entry_host)`` of its statechart's initial coordinator, and
    ``output_specs`` to the operation's declared outputs (used to project
    the final environment into the result document).
    """

    def __init__(
        self,
        composite: str,
        host: str,
        transport: Transport,
        entry_points: "Dict[str, Tuple[str, str]]",
        output_specs: "Dict[str, OperationSpec]",
        default_timeout_ms: Optional[float] = None,
        event_targets: Optional[
            "Dict[str, Dict[str, List[Tuple[str, str]]]]"
        ] = None,
        coordinator_locations: Optional[
            "Dict[str, List[Tuple[str, str]]]"
        ] = None,
        gc_finished_executions: bool = False,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.composite = composite
        self.entry_points = dict(entry_points)
        self.output_specs = dict(output_specs)
        self.default_timeout_ms = default_timeout_ms
        # operation -> event name -> [(node_id, host)] of the coordinators
        # whose routing tables consume that event; computed statically by
        # the deployer, like all other coordination knowledge.
        self.event_targets = dict(event_targets or {})
        # operation -> [(node_id, host)] of every coordinator; used by
        # the garbage-collection broadcast after an execution finishes.
        self.coordinator_locations = dict(coordinator_locations or {})
        self.gc_finished_executions = gc_finished_executions
        self._executions: Dict[str, ExecutionRecord] = {}
        self._counter = itertools.count(1)

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.composite)

    # Message handling ---------------------------------------------------------

    @handles(Execute)
    def _on_execute(self, execute: Execute, message: Message) -> None:
        operation = execute.operation
        arguments = dict(execute.arguments)
        client_node, client_endpoint = message.reply_address()
        execution_id = f"{self.composite}:{operation}:{next(self._counter)}"

        record = ExecutionRecord(
            execution_id=execution_id,
            operation=operation,
            arguments=arguments,
            client_node=client_node,
            client_endpoint=client_endpoint,
            started_ms=self.transport.now_ms(),
            request_key=execute.request_key,
        )
        self._executions[execution_id] = record

        # Acknowledge immediately so the client learns the execution id
        # and can signal ECA events while the execution runs.
        self.send(client_node, client_endpoint, ExecuteAck(
            execution_id=execution_id,
            request_key=execute.request_key,
        ))

        entry = self.entry_points.get(operation)
        if entry is None:
            self._finish(record, "fault",
                         fault=f"composite {self.composite!r} has no "
                               f"operation {operation!r}")
            return

        timeout_ms = (
            execute.timeout_ms if execute.timeout_ms is not None
            else self.default_timeout_ms
        )
        if timeout_ms is not None:
            def on_deadline() -> None:
                self._on_deadline(execution_id)

            record.cancel_deadline = self.transport.schedule(
                self.host, float(timeout_ms), on_deadline
            )

        entry_node, entry_host = entry
        # Seed the entry coordinator: the start token carries the request
        # arguments as the initial variable environment.
        self.send(
            entry_host,
            coordinator_endpoint(self.composite, operation, entry_node),
            Notify(
                execution_id=execution_id,
                edge_id=START_EDGE,
                from_node=WRAPPER_NODE,
                env=arguments,
            ),
        )

    @handles(Complete)
    def _on_complete(self, complete: Complete, message: Message) -> None:
        record = self._executions.get(complete.execution_id)
        if record is None or record.finished:
            return
        env = complete.env
        spec = self.output_specs.get(record.operation)
        if spec is not None and spec.outputs:
            outputs = {p.name: env.get(p.name) for p in spec.outputs}
        else:
            outputs = dict(env)
        self._finish(record, "success", outputs=outputs)

    @handles(ExecutionFault)
    def _on_fault(self, fault: ExecutionFault, message: Message) -> None:
        record = self._executions.get(fault.execution_id)
        if record is None or record.finished:
            return
        self._finish(record, "fault",
                     fault=fault.reason or "unknown fault")

    @handles(Signal)
    def _on_signal(self, signal: Signal, message: Message) -> None:
        """Fan an ECA event out to the coordinators that consume it.

        The fan-out set is static deployment knowledge (which routing
        tables carry which event names), so an event touches only the
        hosts that can react to it.
        """
        record = self._executions.get(signal.execution_id)
        if record is None or record.finished:
            return
        event = signal.event
        targets = self.event_targets.get(record.operation, {}).get(event, [])
        for node_id, host in targets:
            self.send(
                host,
                coordinator_endpoint(
                    self.composite, record.operation, node_id
                ),
                Signal(
                    execution_id=record.execution_id,
                    event=event,
                    payload=signal.payload,
                ),
            )

    def _on_deadline(self, execution_id: str) -> None:
        record = self._executions.get(execution_id)
        if record is None or record.finished:
            return
        self._finish(record, "timeout",
                     fault="execution exceeded its deadline")

    def _finish(
        self,
        record: ExecutionRecord,
        status: str,
        outputs: Optional[Dict[str, Any]] = None,
        fault: str = "",
    ) -> None:
        record.status = status
        record.outputs = outputs or {}
        record.fault = fault
        record.finished_ms = self.transport.now_ms()
        if record.cancel_deadline is not None:
            record.cancel_deadline()
            record.cancel_deadline = None
        self.send(record.client_node, record.client_endpoint, ExecuteResult(
            execution_id=record.execution_id,
            status=record.status,
            outputs=record.outputs,
            fault=record.fault,
            request_key=record.request_key,
        ))
        if self.gc_finished_executions:
            self._broadcast_discard(record)

    def _broadcast_discard(self, record: ExecutionRecord) -> None:
        """Tell every coordinator to drop the finished execution's state.

        Long-running deployments would otherwise accumulate per-execution
        bookkeeping at each coordinator forever; the broadcast is opt-in
        because it adds one message per coordinator per execution.
        """
        for node_id, host in self.coordinator_locations.get(
            record.operation, []
        ):
            self.send(
                host,
                coordinator_endpoint(
                    self.composite, record.operation, node_id
                ),
                Discard(execution_id=record.execution_id),
            )

    # Introspection ---------------------------------------------------------------

    def record(self, execution_id: str) -> Optional[ExecutionRecord]:
        return self._executions.get(execution_id)

    def records(self) -> "List[ExecutionRecord]":
        return list(self._executions.values())

    def running_count(self) -> int:
        return sum(1 for r in self._executions.values() if not r.finished)

    def success_count(self) -> int:
        return sum(
            1 for r in self._executions.values() if r.status == "success"
        )
