"""The composite service's own wrapper.

"When the wrapper of the composite service receives the document, it sends
a message to the coordinator of the state(s) in the statechart which
need(s) to be entered in the first place. [...] Eventually, the
coordinators of the states which are exited in the last place send their
notification of termination back to the composite service wrapper."
(paper §4)

The composite wrapper therefore: accepts ``execute`` requests, seeds the
entry coordinator with a start token, waits for ``complete`` (or
``execution_fault``), enforces an optional execution deadline, and answers
the client with ``execute_result``.  It also keeps an execution log that
examples/benchmarks read.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import (
    MessageKinds,
    START_EDGE,
    WRAPPER_NODE,
    coordinator_endpoint,
    notify_body,
    wrapper_endpoint,
)
from repro.services.description import OperationSpec


@dataclass
class ExecutionRecord:
    """One composite execution as tracked by the wrapper."""

    execution_id: str
    operation: str
    arguments: Dict[str, Any]
    client_node: str
    client_endpoint: str
    status: str = "running"  # running | success | fault | timeout
    outputs: Dict[str, Any] = field(default_factory=dict)
    fault: str = ""
    request_key: str = ""
    started_ms: float = 0.0
    finished_ms: float = 0.0
    cancel_deadline: Optional[Callable[[], None]] = None

    @property
    def finished(self) -> bool:
        return self.status != "running"

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms


class CompositeWrapperRuntime:
    """Runtime wrapper of a deployed composite-service operation set.

    ``entry_points`` maps each operation name to the ``(entry_node_id,
    entry_host)`` of its statechart's initial coordinator, and
    ``output_specs`` to the operation's declared outputs (used to project
    the final environment into the result document).
    """

    def __init__(
        self,
        composite: str,
        host: str,
        transport: Transport,
        entry_points: "Dict[str, Tuple[str, str]]",
        output_specs: "Dict[str, OperationSpec]",
        default_timeout_ms: Optional[float] = None,
        event_targets: Optional[
            "Dict[str, Dict[str, List[Tuple[str, str]]]]"
        ] = None,
        coordinator_locations: Optional[
            "Dict[str, List[Tuple[str, str]]]"
        ] = None,
        gc_finished_executions: bool = False,
    ) -> None:
        self.composite = composite
        self.host = host
        self.transport = transport
        self.entry_points = dict(entry_points)
        self.output_specs = dict(output_specs)
        self.default_timeout_ms = default_timeout_ms
        # operation -> event name -> [(node_id, host)] of the coordinators
        # whose routing tables consume that event; computed statically by
        # the deployer, like all other coordination knowledge.
        self.event_targets = dict(event_targets or {})
        # operation -> [(node_id, host)] of every coordinator; used by
        # the garbage-collection broadcast after an execution finishes.
        self.coordinator_locations = dict(coordinator_locations or {})
        self.gc_finished_executions = gc_finished_executions
        self._executions: Dict[str, ExecutionRecord] = {}
        self._counter = itertools.count(1)

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.composite)

    def install(self) -> None:
        self.transport.node(self.host).register(
            self.endpoint_name, self.on_message
        )

    def uninstall(self) -> None:
        self.transport.node(self.host).unregister(self.endpoint_name)

    # Message handling ---------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == MessageKinds.EXECUTE:
            self._on_execute(message)
        elif message.kind == MessageKinds.COMPLETE:
            self._on_complete(message)
        elif message.kind == MessageKinds.EXECUTION_FAULT:
            self._on_fault(message)
        elif message.kind == MessageKinds.SIGNAL:
            self._on_signal(message)

    def _on_execute(self, message: Message) -> None:
        body = message.body
        operation = body.get("operation", "")
        arguments = dict(body.get("arguments", {}))
        client_node, client_endpoint = message.reply_address()
        execution_id = f"{self.composite}:{operation}:{next(self._counter)}"

        record = ExecutionRecord(
            execution_id=execution_id,
            operation=operation,
            arguments=arguments,
            client_node=client_node,
            client_endpoint=client_endpoint,
            started_ms=self.transport.now_ms(),
            request_key=body.get("request_key", ""),
        )
        self._executions[execution_id] = record

        # Acknowledge immediately so the client learns the execution id
        # and can signal ECA events while the execution runs.
        self.transport.send(Message(
            kind=MessageKinds.EXECUTE_ACK,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=client_node,
            target_endpoint=client_endpoint,
            body={
                "execution_id": execution_id,
                "request_key": body.get("request_key", ""),
            },
        ))

        entry = self.entry_points.get(operation)
        if entry is None:
            self._finish(record, "fault",
                         fault=f"composite {self.composite!r} has no "
                               f"operation {operation!r}")
            return

        timeout_ms = body.get("timeout_ms", self.default_timeout_ms)
        if timeout_ms is not None:
            def on_deadline() -> None:
                self._on_deadline(execution_id)

            record.cancel_deadline = self.transport.schedule(
                self.host, float(timeout_ms), on_deadline
            )

        entry_node, entry_host = entry
        # Seed the entry coordinator: the start token carries the request
        # arguments as the initial variable environment.
        self.transport.send(Message(
            kind=MessageKinds.NOTIFY,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=entry_host,
            target_endpoint=coordinator_endpoint(
                self.composite, operation, entry_node
            ),
            body=notify_body(execution_id, START_EDGE, WRAPPER_NODE,
                             arguments),
        ))

    def _on_complete(self, message: Message) -> None:
        body = message.body
        record = self._executions.get(body.get("execution_id", ""))
        if record is None or record.finished:
            return
        env = body.get("env", {})
        spec = self.output_specs.get(record.operation)
        if spec is not None and spec.outputs:
            outputs = {p.name: env.get(p.name) for p in spec.outputs}
        else:
            outputs = dict(env)
        self._finish(record, "success", outputs=outputs)

    def _on_fault(self, message: Message) -> None:
        body = message.body
        record = self._executions.get(body.get("execution_id", ""))
        if record is None or record.finished:
            return
        self._finish(record, "fault",
                     fault=body.get("reason", "unknown fault"))

    def _on_signal(self, message: Message) -> None:
        """Fan an ECA event out to the coordinators that consume it.

        The fan-out set is static deployment knowledge (which routing
        tables carry which event names), so an event touches only the
        hosts that can react to it.
        """
        body = message.body
        record = self._executions.get(body.get("execution_id", ""))
        if record is None or record.finished:
            return
        event = body.get("event", "")
        targets = self.event_targets.get(record.operation, {}).get(event, [])
        for node_id, host in targets:
            self.transport.send(Message(
                kind=MessageKinds.SIGNAL,
                source=self.host,
                source_endpoint=self.endpoint_name,
                target=host,
                target_endpoint=coordinator_endpoint(
                    self.composite, record.operation, node_id
                ),
                body={
                    "execution_id": record.execution_id,
                    "event": event,
                    "payload": dict(body.get("payload", {})),
                },
            ))

    def _on_deadline(self, execution_id: str) -> None:
        record = self._executions.get(execution_id)
        if record is None or record.finished:
            return
        self._finish(record, "timeout",
                     fault=f"execution exceeded its deadline")

    def _finish(
        self,
        record: ExecutionRecord,
        status: str,
        outputs: Optional[Dict[str, Any]] = None,
        fault: str = "",
    ) -> None:
        record.status = status
        record.outputs = outputs or {}
        record.fault = fault
        record.finished_ms = self.transport.now_ms()
        if record.cancel_deadline is not None:
            record.cancel_deadline()
            record.cancel_deadline = None
        self.transport.send(Message(
            kind=MessageKinds.EXECUTE_RESULT,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=record.client_node,
            target_endpoint=record.client_endpoint,
            body={
                "execution_id": record.execution_id,
                "status": record.status,
                "outputs": record.outputs,
                "fault": record.fault,
                "request_key": record.request_key,
            },
        ))
        if self.gc_finished_executions:
            self._broadcast_discard(record)

    def _broadcast_discard(self, record: ExecutionRecord) -> None:
        """Tell every coordinator to drop the finished execution's state.

        Long-running deployments would otherwise accumulate per-execution
        bookkeeping at each coordinator forever; the broadcast is opt-in
        because it adds one message per coordinator per execution.
        """
        for node_id, host in self.coordinator_locations.get(
            record.operation, []
        ):
            self.transport.send(Message(
                kind=MessageKinds.DISCARD,
                source=self.host,
                source_endpoint=self.endpoint_name,
                target=host,
                target_endpoint=coordinator_endpoint(
                    self.composite, record.operation, node_id
                ),
                body={"execution_id": record.execution_id},
            ))

    # Introspection ---------------------------------------------------------------

    def record(self, execution_id: str) -> Optional[ExecutionRecord]:
        return self._executions.get(execution_id)

    def records(self) -> "List[ExecutionRecord]":
        return list(self._executions.values())

    def running_count(self) -> int:
        return sum(1 for r in self._executions.values() if not r.finished)

    def success_count(self) -> int:
        return sum(
            1 for r in self._executions.values() if r.status == "success"
        )
