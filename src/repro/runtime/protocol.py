"""Wire protocol: message kinds, endpoint naming, result types.

All runtime components speak this small vocabulary.  Keeping it in one
module makes the protocol auditable: every message kind and every
endpoint naming rule is defined here and nowhere else; the body *shape*
of each kind is its typed envelope in :mod:`repro.kernel.envelopes`
(one frozen dataclass per verb, with the only codecs that build or
parse wire bodies).  The ``*_body`` helpers below survive from v1 and
delegate to those codecs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple


class MessageKinds:
    """Protocol verbs.

    ======================  ====================================================
    kind                    meaning
    ======================  ====================================================
    ``execute``             client -> composite wrapper: start an execution
    ``execute_result``      composite wrapper -> client: outcome
    ``notify``              coordinator -> coordinator: control-flow token
    ``invoke``              coordinator/orchestrator -> wrapper: call operation
    ``invoke_result``       wrapper -> caller: operation outcome
    ``complete``            final coordinator -> composite wrapper
    ``execution_fault``     any coordinator -> composite wrapper: abort
    ``execute_ack``         composite wrapper -> client: execution id
    ``signal``              client -> wrapper -> coordinators: an ECA event
    ======================  ====================================================
    """

    EXECUTE = "execute"
    EXECUTE_RESULT = "execute_result"
    NOTIFY = "notify"
    INVOKE = "invoke"
    INVOKE_RESULT = "invoke_result"
    COMPLETE = "complete"
    EXECUTION_FAULT = "execution_fault"
    EXECUTE_ACK = "execute_ack"
    SIGNAL = "signal"
    DISCARD = "discard"


#: Synthetic edge id used by the composite wrapper to seed the entry
#: coordinator; never appears in routing tables.
START_EDGE = "__start__"

#: Synthetic source-node id for the seed notification.
WRAPPER_NODE = "__wrapper__"


def coordinator_endpoint(composite: str, operation: str, node_id: str) -> str:
    """Endpoint name of the coordinator for one flat-graph node."""
    return f"coord:{composite}:{operation}:{node_id}"


def wrapper_endpoint(service: str) -> str:
    """Endpoint name of a service's wrapper (elementary, community or
    composite — one wrapper per service name, as in the original)."""
    return f"wrapper:{service}"


def client_endpoint(client_name: str) -> str:
    """Endpoint name of an end-user client."""
    return f"client:{client_name}"


def central_endpoint(composite: str) -> str:
    """Endpoint name of the centralised orchestrator (baseline)."""
    return f"central:{composite}"


@dataclass
class ExecutionResult:
    """Outcome of one composite-service execution, as seen by a client."""

    execution_id: str
    status: str  # "success" | "fault" | "timeout"
    outputs: Dict[str, Any] = field(default_factory=dict)
    fault: str = ""
    started_ms: float = 0.0
    finished_ms: float = 0.0
    #: Client-side correlation key of the originating ``execute`` request.
    #: Echoed by the wrapper so results can be matched to submissions
    #: without waiting for the ``execute_ack`` (acks and results may
    #: reorder under random latency).
    request_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms


@dataclass(frozen=True)
class ResolvedBinding:
    """A located service: the typed address ``submit``/``execute`` accept.

    Produced by :meth:`~repro.discovery.engine.ServiceDiscoveryEngine.locate`
    from the service's UDDI binding, so holding one proves the service was
    published.  ``operations`` (when known from the WSDL) lets the client
    reject a bad operation name before any message is sent.
    """

    service: str
    node: str
    endpoint: str
    operations: "Tuple[str, ...]" = ()
    access_point: str = ""
    wsdl_url: str = ""

    @property
    def address(self) -> "Tuple[str, str]":
        """The ``(node, endpoint)`` pair the runtime sends to."""
        return self.node, self.endpoint

    def supports(self, operation: str) -> bool:
        """Whether ``operation`` is advertised (vacuously true if unknown)."""
        return not self.operations or operation in self.operations


def notify_body(
    execution_id: str,
    edge_id: str,
    from_node: str,
    env: Mapping[str, Any],
) -> "Dict[str, Any]":
    """A ``notify`` body via its envelope codec (v1-compat helper)."""
    from repro.kernel.envelopes import Notify  # cycle: kernel uses MessageKinds

    return Notify(
        execution_id=execution_id,
        edge_id=edge_id,
        from_node=from_node,
        env=env,
    ).to_body()


def invoke_body(
    invocation_id: str,
    execution_id: str,
    operation: str,
    arguments: Mapping[str, Any],
) -> "Dict[str, Any]":
    """An ``invoke`` body via its envelope codec (v1-compat helper)."""
    from repro.kernel.envelopes import Invoke  # cycle: kernel uses MessageKinds

    return Invoke(
        invocation_id=invocation_id,
        execution_id=execution_id,
        operation=operation,
        arguments=arguments,
    ).to_body()


def invoke_result_body(
    invocation_id: str,
    execution_id: str,
    ok: bool,
    outputs: Optional[Mapping[str, Any]] = None,
    fault: str = "",
) -> "Dict[str, Any]":
    """An ``invoke_result`` body via its envelope codec (v1-compat helper)."""
    from repro.kernel.envelopes import InvokeResult  # cycle: see above

    return InvokeResult.outcome(
        invocation_id, execution_id, ok, outputs, fault
    ).to_body()
