"""The ``Wrapper`` providers install next to their elementary service.

"The administrator is also required to build a wrapper for the service by
downloading and configuring a class Wrapper provided by the SELF-SERV
platform." (paper §3)

The wrapper is a kernel :class:`~repro.kernel.Actor` with exactly one
verb: it receives ``invoke`` envelopes, runs the operation against the
local service implementation, and replies with ``invoke_result``.  Work
time and reliability come from the service's QoS profile, sampled on the
transport clock so the simulated testbed stays deterministic.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import ServiceError
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import Invoke, InvokeResult
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import wrapper_endpoint
from repro.services.elementary import ElementaryService


class ServiceWrapperRuntime(Actor):
    """Runtime wrapper around one elementary service."""

    def __init__(
        self,
        service: ElementaryService,
        host: str,
        transport: Transport,
        rng: Optional[random.Random] = None,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.service = service
        self.rng = rng or random.Random(0)
        self.in_flight = 0
        self.completed = 0
        self.faulted = 0

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.service.name)

    @handles(Invoke)
    def _on_invoke(self, invoke: Invoke, message: Message) -> None:
        reply_node, reply_endpoint = message.reply_address()
        invocation_id = invoke.invocation_id
        execution_id = invoke.execution_id
        operation = invoke.operation
        arguments = invoke.arguments

        work_ms = self.service.profile.sample_latency_ms(self.rng)
        self.in_flight += 1

        def do_work() -> None:
            self.in_flight -= 1
            ok = self.service.profile.sample_success(self.rng)
            if not ok:
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False,
                    fault=f"service {self.service.name!r} failed "
                          f"(simulated unreliability)",
                )
                return
            try:
                outputs = self.service.invoke(operation, arguments)
            except ServiceError as exc:
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False, fault=str(exc),
                )
                return
            self.completed += 1
            self._reply(
                reply_node, reply_endpoint, invocation_id, execution_id,
                ok=True, outputs=outputs,
            )

        self.transport.schedule(self.host, work_ms, do_work)

    def _reply(
        self,
        node: str,
        endpoint: str,
        invocation_id: str,
        execution_id: str,
        ok: bool,
        outputs: Optional[dict] = None,
        fault: str = "",
    ) -> None:
        self.send(node, endpoint, InvokeResult.outcome(
            invocation_id, execution_id, ok, outputs, fault,
        ))
