"""The ``Wrapper`` providers install next to their elementary service.

"The administrator is also required to build a wrapper for the service by
downloading and configuring a class Wrapper provided by the SELF-SERV
platform." (paper §3)

The wrapper receives ``invoke`` messages, runs the operation against the
local service implementation, and replies with ``invoke_result``.  Work
time and reliability come from the service's QoS profile, sampled on the
transport clock so the simulated testbed stays deterministic.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import ServiceError
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import (
    MessageKinds,
    invoke_result_body,
    wrapper_endpoint,
)
from repro.services.elementary import ElementaryService


class ServiceWrapperRuntime:
    """Runtime wrapper around one elementary service."""

    def __init__(
        self,
        service: ElementaryService,
        host: str,
        transport: Transport,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.transport = transport
        self.rng = rng or random.Random(0)
        self.in_flight = 0
        self.completed = 0
        self.faulted = 0

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.service.name)

    def install(self) -> None:
        self.transport.node(self.host).register(
            self.endpoint_name, self.on_message
        )

    def uninstall(self) -> None:
        self.transport.node(self.host).unregister(self.endpoint_name)

    def on_message(self, message: Message) -> None:
        if message.kind != MessageKinds.INVOKE:
            return
        body = message.body
        reply_node, reply_endpoint = message.reply_address()
        invocation_id = body.get("invocation_id", "")
        execution_id = body.get("execution_id", "")
        operation = body.get("operation", "")
        arguments = body.get("arguments", {})

        work_ms = self.service.profile.sample_latency_ms(self.rng)
        self.in_flight += 1

        def do_work() -> None:
            self.in_flight -= 1
            ok = self.service.profile.sample_success(self.rng)
            if not ok:
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False,
                    fault=f"service {self.service.name!r} failed "
                          f"(simulated unreliability)",
                )
                return
            try:
                outputs = self.service.invoke(operation, arguments)
            except ServiceError as exc:
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False, fault=str(exc),
                )
                return
            self.completed += 1
            self._reply(
                reply_node, reply_endpoint, invocation_id, execution_id,
                ok=True, outputs=outputs,
            )

        self.transport.schedule(self.host, work_ms, do_work)

    def _reply(
        self,
        node: str,
        endpoint: str,
        invocation_id: str,
        execution_id: str,
        ok: bool,
        outputs: Optional[dict] = None,
        fault: str = "",
    ) -> None:
        self.transport.send(Message(
            kind=MessageKinds.INVOKE_RESULT,
            source=self.host,
            source_endpoint=self.endpoint_name,
            target=node,
            target_endpoint=endpoint,
            body=invoke_result_body(
                invocation_id, execution_id, ok, outputs, fault
            ),
        ))
