"""The ``Wrapper`` providers install next to their elementary service.

"The administrator is also required to build a wrapper for the service by
downloading and configuring a class Wrapper provided by the SELF-SERV
platform." (paper §3)

The wrapper is a kernel :class:`~repro.kernel.Actor` with exactly one
verb: it receives ``invoke`` envelopes, runs the operation against the
local service implementation, and replies with ``invoke_result``.  Work
time and reliability come from the service's QoS profile, sampled on the
transport clock so the simulated testbed stays deterministic.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import ServiceError
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import Invoke, InvokeResult
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import wrapper_endpoint
from repro.services.elementary import ElementaryService


class ServiceWrapperRuntime(Actor):
    """Runtime wrapper around one elementary service."""

    def __init__(
        self,
        service: ElementaryService,
        host: str,
        transport: Transport,
        rng: Optional[random.Random] = None,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.service = service
        self.rng = rng or random.Random(0)
        self.in_flight = 0
        self.completed = 0
        self.faulted = 0
        #: Effect ledger (``repro.durability``) giving invocations
        #: exactly-once semantics across crash recovery; set by the
        #: deployer when durability is configured, ``None`` otherwise.
        self.effects = None

    @property
    def endpoint_name(self) -> str:
        return wrapper_endpoint(self.service.name)

    @handles(Invoke)
    def _on_invoke(self, invoke: Invoke, message: Message) -> None:
        reply_node, reply_endpoint = message.reply_address()
        invocation_id = invoke.invocation_id
        execution_id = invoke.execution_id
        operation = invoke.operation
        arguments = invoke.arguments

        work_ms = self.service.profile.sample_latency_ms(self.rng)
        self.in_flight += 1

        def do_work() -> None:
            self.in_flight -= 1
            recorded = (
                self.effects.lookup(execution_id, invocation_id)
                if self.effects is not None else None
            )
            if recorded is not None:
                # Replayed duplicate of an invocation whose side effect
                # already ran: draw-and-discard keeps the RNG aligned
                # with the original schedule, the service is NOT
                # re-invoked, and the recorded outcome is re-sent.
                self.service.profile.sample_success(self.rng)
                if recorded["ok"]:
                    self.completed += 1
                else:
                    self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=recorded["ok"],
                    outputs=recorded["outputs"],
                    fault=recorded["fault"],
                )
                return
            ok = self.service.profile.sample_success(self.rng)
            if not ok:
                fault = (
                    f"service {self.service.name!r} failed "
                    f"(simulated unreliability)"
                )
                self._record_effect(execution_id, invocation_id,
                                    ok=False, outputs=None, fault=fault)
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False, fault=fault,
                )
                return
            try:
                outputs = self.service.invoke(operation, arguments)
            except ServiceError as exc:
                self._record_effect(execution_id, invocation_id,
                                    ok=False, outputs=None, fault=str(exc))
                self.faulted += 1
                self._reply(
                    reply_node, reply_endpoint, invocation_id, execution_id,
                    ok=False, fault=str(exc),
                )
                return
            # The effect record reaches the WAL *before* the reply is
            # sent: a logged InvokeResult delivery therefore implies the
            # effect record survived the crash too (only tail loss is
            # possible), which is what keeps replay exactly-once.
            self._record_effect(execution_id, invocation_id,
                                ok=True, outputs=outputs, fault="")
            self.completed += 1
            self._reply(
                reply_node, reply_endpoint, invocation_id, execution_id,
                ok=True, outputs=outputs,
            )

        self.transport.schedule(self.host, work_ms, do_work)

    def _record_effect(
        self,
        execution_id: str,
        invocation_id: str,
        ok: bool,
        outputs: Optional[dict],
        fault: str,
    ) -> None:
        if self.effects is not None:
            self.effects.record(execution_id, invocation_id,
                                ok=ok, outputs=outputs, fault=fault)

    def _reply(
        self,
        node: str,
        endpoint: str,
        invocation_id: str,
        execution_id: str,
        ok: bool,
        outputs: Optional[dict] = None,
        fault: str = "",
    ) -> None:
        self.send(node, endpoint, InvokeResult.outcome(
            invocation_id, execution_id, ok, outputs, fault,
        ))
