"""End-user client: the runtime behind Figure 3's Execute button.

A client is a kernel :class:`~repro.kernel.Actor` on the end user's own
node: it sends ``execute`` envelopes to a composite wrapper, handles the
``execute_ack``/``execute_result`` replies, and waits with the
transport's blocking primitive — virtual time on the simulator,
wall-clock polling on threads.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Dict, Mapping, Optional

from repro.exceptions import ExecutionError, ExecutionTimeoutError
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import Execute, ExecuteAck, ExecuteResult, Signal
from repro.net.message import Message
from repro.net.transport import Transport
from repro.runtime.protocol import ExecutionResult, client_endpoint

_request_ids = itertools.count(1)


class RuntimeClient(Actor):
    """A client able to execute composite (or any wrapped) services."""

    #: How many completed request keys are remembered for duplicate-result
    #: protection; old keys age out so long-lived clients stay bounded.
    COMPLETED_HISTORY = 4096

    def __init__(
        self,
        name: str,
        host: str,
        transport: Transport,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.name = name
        self._results: Dict[str, ExecutionResult] = {}
        self._acks: Dict[str, str] = {}  # request_key -> execution_id
        # Non-blocking completion path: request_key -> callback.  Results
        # whose request key is registered here are routed to the callback
        # instead of the shared results pool; consumed keys move to
        # ``_completed`` (bounded, oldest aged out) so late duplicate
        # deliveries are dropped.
        self._callbacks: "Dict[str, Callable[[ExecutionResult], None]]" = {}
        self._completed: "set[str]" = set()
        self._completed_order: "deque[str]" = deque()

    @property
    def endpoint_name(self) -> str:
        return client_endpoint(self.name)

    @handles(ExecuteAck)
    def _on_ack(self, ack: ExecuteAck, message: Message) -> None:
        if ack.request_key and ack.request_key not in self._completed:
            # Acks of abandoned requests (retry/hedge losers, timed-out
            # calls) are dropped so they cannot accumulate.
            self._acks[ack.request_key] = ack.execution_id

    @handles(ExecuteResult)
    def _on_execute_result(
        self, outcome: ExecuteResult, message: Message
    ) -> None:
        request_key = outcome.request_key
        if request_key:
            # The ack mapping has served its purpose once the result is
            # here (the result itself carries the execution id); dropping
            # it keeps long-lived clients bounded.
            self._acks.pop(request_key, None)
        result = ExecutionResult(
            execution_id=outcome.execution_id,
            status=outcome.status,
            outputs=dict(outcome.outputs),
            fault=outcome.fault,
            finished_ms=self.transport.now_ms(),
            request_key=request_key,
        )
        if request_key in self._callbacks:
            # One completion per submission: the callback is consumed on
            # first delivery, so a duplicated result cannot fire it twice.
            callback = self._callbacks.pop(request_key)
            self._mark_completed(request_key)
            callback(result)
            return
        if request_key and request_key in self._completed:
            return  # duplicate delivery of an already-completed request
        self._results[result.execution_id] = result

    def _mark_completed(self, request_key: str) -> None:
        self._completed.add(request_key)
        self._completed_order.append(request_key)
        while len(self._completed_order) > self.COMPLETED_HISTORY:
            self._completed.discard(self._completed_order.popleft())

    # Asynchronous API -----------------------------------------------------

    def submit(
        self,
        target_node: str,
        target_endpoint: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        on_result: "Optional[Callable[[ExecutionResult], None]]" = None,
    ) -> str:
        """Fire an execute request; returns a request key for result().

        ``deadline_ms`` is an *execution* deadline enforced by the
        composite wrapper (when unset, the wrapper's deployment default
        applies) — distinct from the client-side wait timeout of
        :meth:`execute`.  The composite wrapper assigns the real execution
        id, so the local key is provisional until the result arrives;
        ``wait_all`` and ``execute`` hide this bookkeeping.

        When ``on_result`` is given, the request's result is delivered to
        that callback (exactly once, on the message-handling path) instead
        of the shared pool read by :meth:`take_results`/:meth:`wait_all` —
        the correlation path behind :class:`repro.api.ExecutionHandle`.
        """
        self.install()
        request_key = f"{self.name}-req{next(_request_ids)}"
        if on_result is not None:
            self._callbacks[request_key] = on_result
        self.send(target_node, target_endpoint, Execute(
            operation=operation,
            arguments=dict(arguments or {}),
            request_key=request_key,
            timeout_ms=deadline_ms,
        ))
        return request_key

    def abandon(self, request_key: str) -> None:
        """Retire an in-flight request the caller no longer wants.

        Drops its callback and ack, and marks the key completed so a
        straggling (or duplicated) result is discarded instead of
        leaking into the shared results pool.  This is how the
        resilience layer cancels the losers of a hedged or retried
        submission — the request-key correlation makes cancellation a
        local bookkeeping operation, no extra wire messages.
        """
        self._callbacks.pop(request_key, None)
        self._acks.pop(request_key, None)
        self._mark_completed(request_key)

    def ack_for(self, request_key: str) -> str:
        """The acked execution id of a request, or ``""`` — never blocks."""
        return self._acks.get(request_key, "")

    def execution_id_for(
        self, request_key: str, timeout_ms: Optional[float] = 10_000.0
    ) -> str:
        """Wait for the wrapper's ack and return the execution id.

        Needed before signalling ECA events at a running execution.
        """
        arrived = self.transport.wait_for(
            lambda: request_key in self._acks, timeout_ms=timeout_ms
        )
        if not arrived:
            raise ExecutionError(
                f"no execute_ack for request {request_key!r}"
            )
        return self._acks[request_key]

    def signal(
        self,
        target_node: str,
        target_endpoint: str,
        execution_id: str,
        event: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Send an ECA event to a running execution.

        ``payload`` values are merged into the waiting token's variable
        environment before its guards are evaluated.
        """
        self.install()
        self.send(target_node, target_endpoint, Signal(
            execution_id=execution_id,
            event=event,
            payload=dict(payload or {}),
        ))

    def results_received(self) -> int:
        return len(self._results)

    def take_results(self) -> "Dict[str, ExecutionResult]":
        """Drain and return all results collected so far."""
        drained = dict(self._results)
        self._results.clear()
        return drained

    # Synchronous convenience ------------------------------------------------

    def execute(
        self,
        target_node: str,
        target_endpoint: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        timeout_ms: Optional[float] = 60_000.0,
        deadline_ms: Optional[float] = None,
    ) -> ExecutionResult:
        """Execute one operation and block until its result arrives.

        ``timeout_ms`` bounds the client-side wait; ``deadline_ms``
        (optional) is forwarded to the composite wrapper as the execution
        deadline.  Raises :class:`ExecutionTimeoutError` when no result
        (not even a fault) arrives within ``timeout_ms`` — e.g. the
        composite host is down.
        """
        started = self.transport.now_ms()
        # Ride the correlation path: the result is matched to this call by
        # request key (and duplicates dropped), never fished out of the
        # shared pool by arrival time.
        delivered: "list[ExecutionResult]" = []
        request_key = self.submit(
            target_node, target_endpoint, operation, arguments,
            deadline_ms=deadline_ms, on_result=delivered.append,
        )
        arrived = self.transport.wait_for(
            lambda: bool(delivered), timeout_ms=timeout_ms
        )
        if not arrived:
            # The caller is abandoning the request: retire its state so
            # a straggling result is dropped, not left as a ghost in the
            # shared pool (no leak on repeated retries against a dead
            # host).
            self.abandon(request_key)
            raise ExecutionTimeoutError(
                f"no result for {operation!r} within {timeout_ms} ms "
                f"(target {target_node!r} unreachable?)"
            )
        result = delivered[0]
        result.started_ms = started
        return result

    def wait_all(
        self, expected: int, timeout_ms: Optional[float] = None
    ) -> "Dict[str, ExecutionResult]":
        """Wait until ``expected`` results have arrived, then drain them."""
        arrived = self.transport.wait_for(
            lambda: len(self._results) >= expected, timeout_ms=timeout_ms
        )
        if not arrived:
            raise ExecutionTimeoutError(
                f"only {len(self._results)}/{expected} results arrived"
            )
        return self.take_results()
