"""Assembly of the travel scenario: services, community, composite, hosts.

The statechart reproduces Figure 2:

* an AND state runs two regions in parallel:

  - region 0 — the booking pipeline: XOR choice on
    ``domestic(destination)`` between Domestic Flight Booking (DFB) and
    the International Travel Arrangements (ITA) compound state (which
    chains International Flight Booking and Travel Insurance), followed
    by Accommodation Booking (AB, a community),
  - region 1 — Attractions Search (AS),

* after the join, Car Rental (CR) fires iff
  ``not near(major_attraction, accommodation)``; otherwise the chart
  completes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.deployment.deployer import CompositeDeployment, Deployer
from repro.demo.providers import (
    make_accommodation_member,
    make_attractions_search,
    make_car_rental,
    make_domestic_flight_booking,
    make_international_flight_booking,
    make_travel_insurance,
)
from repro.runtime.community_wrapper import CommunityWrapperRuntime
from repro.runtime.service_wrapper import ServiceWrapperRuntime
from repro.selection.policies import SelectionPolicy
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService
from repro.services.profile import ServiceProfile
from repro.statecharts.builder import StatechartBuilder
from repro.statecharts.model import Statechart


#: Input mapping shared by both flight-booking states.
_FLIGHT_INPUTS = {
    "customer": "customer",
    "destination": "destination",
    "departure_date": "departure_date",
    "return_date": "return_date",
}


def _booking_region() -> Statechart:
    """Region 0: flight choice then accommodation booking."""
    ita_inner = (
        StatechartBuilder("ITA")
        .initial()
        .task(
            "IFB", "InternationalFlightBooking", "bookFlight",
            inputs=dict(_FLIGHT_INPUTS),
            outputs={"flight_ref": "flight_ref", "flight_price": "price",
                     "airline": "airline"},
            name="International Flight Booking",
        )
        .task(
            "TI", "TravelInsurance", "insure",
            inputs={"customer": "customer", "destination": "destination",
                    "trip_price": "flight_price"},
            outputs={"insurance_ref": "insurance_ref",
                     "insurance_premium": "premium"},
            name="Travel Insurance",
        )
        .final()
        .chain("initial", "IFB", "TI", "final")
        .build()
    )
    return (
        StatechartBuilder("bookings")
        .initial()
        .task(
            "DFB", "DomesticFlightBooking", "bookFlight",
            inputs=dict(_FLIGHT_INPUTS),
            outputs={"flight_ref": "flight_ref", "flight_price": "price",
                     "airline": "airline"},
            name="Domestic Flight Booking",
        )
        .compound("ITA", ita_inner, name="International Travel Arrangements")
        .task(
            "AB", "AccommodationBooking", "bookAccommodation",
            inputs={"customer": "customer", "destination": "destination",
                    "checkin": "departure_date", "checkout": "return_date"},
            outputs={"accommodation_ref": "booking_ref",
                     "accommodation": "accommodation",
                     "nightly_rate": "nightly_rate"},
            name="Accommodation Booking",
        )
        .final()
        .choice("initial", {
            "DFB": "domestic(destination)",
            "ITA": "not domestic(destination)",
        })
        .arc("DFB", "AB")
        .arc("ITA", "AB")
        .arc("AB", "final")
        .build()
    )


def _search_region() -> Statechart:
    """Region 1: attractions search."""
    return (
        StatechartBuilder("search")
        .initial()
        .task(
            "AS", "AttractionsSearch", "searchAttractions",
            inputs={"destination": "destination"},
            outputs={"major_attraction": "major_attraction",
                     "attractions": "attractions"},
            name="Attractions Search",
        )
        .final()
        .chain("initial", "AS", "final")
        .build()
    )


def build_travel_chart() -> Statechart:
    """The full Figure 2 statechart."""
    return (
        StatechartBuilder("arrangeTrip")
        .initial()
        .parallel("trip", [_booking_region(), _search_region()],
                  name="Trip Arrangement")
        .task(
            "CR", "CarRental", "rentCar",
            inputs={"customer": "customer", "destination": "destination",
                    "pickup_date": "departure_date"},
            outputs={"car_ref": "car_ref", "car_daily_rate": "daily_rate",
                     "car_agency": "agency"},
            name="Car Rental",
        )
        .final()
        .arc("initial", "trip")
        .choice("trip", {
            "CR": "not near(major_attraction, accommodation)",
            "final": "near(major_attraction, accommodation)",
        })
        .arc("CR", "final", transition_id="t_cr_done")
        .build()
    )


def build_travel_composite(
    name: str = "TravelArrangement",
    provider: str = "EasyTrips",
) -> CompositeService:
    """The composite service of the demo, with its operation signature."""
    description = ServiceDescription(
        name=name,
        provider=provider,
        description="One-stop travel arrangement: flights, accommodation, "
                    "attractions and car rental",
    )
    composite = CompositeService(description)
    composite.define_operation(
        OperationSpec(
            name="arrangeTrip",
            inputs=(
                Parameter("customer", ParameterType.STRING),
                Parameter("destination", ParameterType.STRING),
                Parameter("departure_date", ParameterType.STRING),
                Parameter("return_date", ParameterType.STRING,
                          required=False),
            ),
            outputs=(
                Parameter("flight_ref", ParameterType.STRING),
                Parameter("accommodation_ref", ParameterType.STRING),
                Parameter("accommodation", ParameterType.RECORD),
                Parameter("major_attraction", ParameterType.RECORD),
                Parameter("insurance_ref", ParameterType.STRING,
                          required=False),
                Parameter("car_ref", ParameterType.STRING, required=False),
            ),
            description="Arrange a complete trip",
        ),
        build_travel_chart(),
    )
    return composite


#: Accommodation community members: (service name, provider, rate
#: multiplier, hotel index, profile, request constraint).  Profiles
#: differ so selection policies have something to choose on; BudgetBeds
#: only covers Australian destinations, exercising the
#: parameters-of-the-request input to delegation.
DEFAULT_MEMBERS: "List[Tuple[str, str, float, int, ServiceProfile, str]]" = [
    ("SunLodgeBooking", "SunLodge", 1.0, 0,
     ServiceProfile(latency_mean_ms=45.0, latency_jitter_ms=10.0,
                    reliability=0.99, cost=2.0, capacity=8),
     ""),
    ("GlobalStayBooking", "GlobalStay", 1.15, 1,
     ServiceProfile(latency_mean_ms=30.0, latency_jitter_ms=5.0,
                    reliability=0.97, cost=3.0, capacity=16),
     ""),
    ("BudgetBedsBooking", "BudgetBeds", 0.85, 0,
     ServiceProfile(latency_mean_ms=90.0, latency_jitter_ms=40.0,
                    reliability=0.90, cost=1.0, capacity=4),
     "domestic(destination)"),
]


def build_accommodation_community(
    members: "Optional[List[Tuple[str, str, float, int, ServiceProfile, str]]]"
    = None,
) -> "Tuple[ServiceCommunity, List[ElementaryService]]":
    """The Accommodation Booking community plus its member services."""
    description = ServiceDescription(
        name="AccommodationBooking",
        provider="AccommodationAlliance",
        description="Community of accommodation booking providers",
    )
    description.add_operation(OperationSpec(
        name="bookAccommodation",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("checkin", ParameterType.STRING, required=False),
            Parameter("checkout", ParameterType.STRING, required=False),
        ),
        outputs=(
            Parameter("booking_ref", ParameterType.STRING),
            Parameter("accommodation", ParameterType.RECORD),
            Parameter("nightly_rate", ParameterType.FLOAT),
        ),
    ))
    community = ServiceCommunity(description)
    services: "List[ElementaryService]" = []
    for name, provider, multiplier, hotel_index, profile, constraint in (
        members if members is not None else DEFAULT_MEMBERS
    ):
        service = make_accommodation_member(
            name, provider, rate_multiplier=multiplier,
            hotel_index=hotel_index, profile=profile,
        )
        services.append(service)
        community.join(name, profile=profile, constraint=constraint)
    return community, services


@dataclass
class TravelScenario:
    """All the pieces of the demo, before deployment."""

    composite: CompositeService
    elementary: List[ElementaryService]
    community: ServiceCommunity
    community_members: List[ElementaryService]
    hosts: Dict[str, str] = field(default_factory=dict)

    def all_services(self) -> "List[ElementaryService]":
        return list(self.elementary) + list(self.community_members)


def build_travel_scenario() -> TravelScenario:
    """Construct every service of the demo with one host per provider."""
    elementary = [
        make_domestic_flight_booking(),
        make_international_flight_booking(),
        make_travel_insurance(),
        make_attractions_search(),
        make_car_rental(),
    ]
    community, members = build_accommodation_community()
    scenario = TravelScenario(
        composite=build_travel_composite(),
        elementary=elementary,
        community=community,
        community_members=members,
    )
    for service in scenario.all_services():
        scenario.hosts[service.name] = f"host-{service.provider.lower()}"
    scenario.hosts[community.name] = "host-accommodation-alliance"
    scenario.hosts[scenario.composite.name] = "host-easytrips"
    return scenario


@dataclass
class DeployedScenario:
    """Handles to everything the deployer installed."""

    scenario: TravelScenario
    deployment: CompositeDeployment
    wrappers: Dict[str, ServiceWrapperRuntime]
    community_wrapper: CommunityWrapperRuntime

    @property
    def address(self) -> "Tuple[str, str]":
        return self.deployment.address


def deploy_travel_scenario(
    deployer: Deployer,
    scenario: Optional[TravelScenario] = None,
    community_policy: "Union[SelectionPolicy, str]" = "multi-attribute",
    community_timeout_ms: float = 1000.0,
    default_timeout_ms: Optional[float] = None,
) -> DeployedScenario:
    """Deploy the whole scenario onto the deployer's transport."""
    scenario = scenario or build_travel_scenario()
    wrappers: Dict[str, ServiceWrapperRuntime] = {}
    for service in scenario.all_services():
        wrappers[service.name] = deployer.deploy_elementary(
            service, scenario.hosts[service.name]
        )
    community_wrapper = deployer.deploy_community(
        scenario.community,
        scenario.hosts[scenario.community.name],
        policy=community_policy,
        timeout_ms=community_timeout_ms,
    )
    deployment = deployer.deploy_composite(
        scenario.composite,
        scenario.hosts[scenario.composite.name],
        default_timeout_ms=default_timeout_ms,
    )
    return DeployedScenario(
        scenario=scenario,
        deployment=deployment,
        wrappers=wrappers,
        community_wrapper=community_wrapper,
    )
