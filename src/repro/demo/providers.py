"""Provider implementations for the travel scenario.

Each factory returns a ready-to-deploy :class:`ElementaryService` with
handlers backed by the static city/hotel/attraction tables below.  The
data is arranged so the demo's conditional branches genuinely vary:

* ``sydney``/``melbourne`` are domestic (DFB path) with near attractions
  (no car rental),
* ``cairns`` is domestic but its major attraction is ~60 km away (car
  rental fires),
* ``paris`` is international (ITA path, includes travel insurance) and
  near,
* ``tokyo`` is international and far (ITA + car rental).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import InvocationError
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService, operation_handler
from repro.services.profile import ServiceProfile

# City database: coordinates, country, hotels and attractions ------------------

CITIES: "Dict[str, Dict[str, Any]]" = {
    "sydney": {
        "country": "australia",
        "hotels": [
            {"name": "Harbourview Hotel", "lat": -33.861, "lon": 151.210,
             "rate": 180.0},
            {"name": "Rocks Boutique Stay", "lat": -33.859, "lon": 151.208,
             "rate": 230.0},
        ],
        "attractions": [
            {"name": "Sydney Opera House", "lat": -33.857, "lon": 151.215},
            {"name": "Taronga Zoo", "lat": -33.843, "lon": 151.241},
        ],
    },
    "melbourne": {
        "country": "australia",
        "hotels": [
            {"name": "Yarra Grand", "lat": -37.818, "lon": 144.965,
             "rate": 160.0},
        ],
        "attractions": [
            {"name": "Federation Square", "lat": -37.818, "lon": 144.969},
        ],
    },
    "cairns": {
        "country": "australia",
        "hotels": [
            {"name": "Reef Esplanade Resort", "lat": -16.918, "lon": 145.778,
             "rate": 140.0},
        ],
        "attractions": [
            {"name": "Great Barrier Reef Pontoon", "lat": -16.760,
             "lon": 146.250},
            {"name": "Kuranda Rainforest", "lat": -16.820, "lon": 145.640},
        ],
    },
    "paris": {
        "country": "france",
        "hotels": [
            {"name": "Hôtel du Marais", "lat": 48.858, "lon": 2.360,
             "rate": 210.0},
        ],
        "attractions": [
            {"name": "Louvre Museum", "lat": 48.861, "lon": 2.336},
            {"name": "Eiffel Tower", "lat": 48.858, "lon": 2.294},
        ],
    },
    "tokyo": {
        "country": "japan",
        "hotels": [
            {"name": "Shinjuku Sky Hotel", "lat": 35.690, "lon": 139.700,
             "rate": 190.0},
        ],
        "attractions": [
            {"name": "Mount Fuji Viewpoint", "lat": 35.360, "lon": 138.727},
            {"name": "Senso-ji Temple", "lat": 35.714, "lon": 139.796},
        ],
    },
}

#: Flight base prices (one way, abstract currency units).
_FLIGHT_BASE = {
    "sydney": 180.0,
    "melbourne": 150.0,
    "cairns": 260.0,
    "paris": 1350.0,
    "tokyo": 980.0,
}


def _city(destination: str) -> "Dict[str, Any]":
    city = CITIES.get(str(destination).lower())
    if city is None:
        raise InvocationError(
            f"unknown destination {destination!r}; known: "
            f"{sorted(CITIES)}"
        )
    return city


def _booking_ref(prefix: str, customer: str, destination: str) -> str:
    token = abs(hash((prefix, customer, destination))) % 1_000_000
    return f"{prefix}-{token:06d}"


# Flight booking -----------------------------------------------------------------

def make_domestic_flight_booking(
    provider: str = "AusAir",
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """Domestic Flight Booking (DFB): Australian destinations only."""
    description = ServiceDescription(
        name="DomesticFlightBooking",
        provider=provider,
        description="Books flights within Australia",
    )
    description.add_operation(OperationSpec(
        name="bookFlight",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("departure_date", ParameterType.STRING),
            Parameter("return_date", ParameterType.STRING, required=False),
        ),
        outputs=(
            Parameter("flight_ref", ParameterType.STRING),
            Parameter("price", ParameterType.FLOAT),
            Parameter("airline", ParameterType.STRING),
        ),
        description="Book a return domestic flight",
    ))
    service = ElementaryService(description, profile or ServiceProfile(
        latency_mean_ms=40.0, latency_jitter_ms=10.0, cost=2.0,
    ))

    @operation_handler
    def book_flight(customer, destination, departure_date, return_date=None):
        city = _city(destination)
        if city["country"] != "australia":
            raise InvocationError(
                f"DomesticFlightBooking only serves Australian "
                f"destinations, not {destination!r}"
            )
        return {
            "flight_ref": _booking_ref("DFB", customer, destination),
            "price": _FLIGHT_BASE[str(destination).lower()],
            "airline": provider,
        }

    service.bind("bookFlight", book_flight)
    return service


def make_international_flight_booking(
    provider: str = "GlobalWings",
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """International Flight Booking (IFB), used inside the ITA compound."""
    description = ServiceDescription(
        name="InternationalFlightBooking",
        provider=provider,
        description="Books international flights",
    )
    description.add_operation(OperationSpec(
        name="bookFlight",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("departure_date", ParameterType.STRING),
            Parameter("return_date", ParameterType.STRING, required=False),
        ),
        outputs=(
            Parameter("flight_ref", ParameterType.STRING),
            Parameter("price", ParameterType.FLOAT),
            Parameter("airline", ParameterType.STRING),
        ),
    ))
    service = ElementaryService(description, profile or ServiceProfile(
        latency_mean_ms=70.0, latency_jitter_ms=20.0, cost=3.0,
    ))

    @operation_handler
    def book_flight(customer, destination, departure_date, return_date=None):
        city = _city(destination)
        if city["country"] == "australia":
            raise InvocationError(
                f"InternationalFlightBooking does not serve domestic "
                f"destination {destination!r}"
            )
        return {
            "flight_ref": _booking_ref("IFB", customer, destination),
            "price": _FLIGHT_BASE[str(destination).lower()],
            "airline": provider,
        }

    service.bind("bookFlight", book_flight)
    return service


def make_travel_insurance(
    provider: str = "SureTravel",
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """Travel Insurance (TI), the second step of the ITA compound."""
    description = ServiceDescription(
        name="TravelInsurance",
        provider=provider,
        description="Issues travel insurance for international trips",
    )
    description.add_operation(OperationSpec(
        name="insure",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("trip_price", ParameterType.FLOAT, required=False),
        ),
        outputs=(
            Parameter("insurance_ref", ParameterType.STRING),
            Parameter("premium", ParameterType.FLOAT),
        ),
    ))
    service = ElementaryService(description, profile or ServiceProfile(
        latency_mean_ms=25.0, latency_jitter_ms=5.0, cost=1.0,
    ))

    @operation_handler
    def insure(customer, destination, trip_price=None):
        base = 45.0
        if trip_price:
            base += 0.03 * float(trip_price)
        return {
            "insurance_ref": _booking_ref("TI", customer, destination),
            "premium": round(base, 2),
        }

    service.bind("insure", insure)
    return service


# Accommodation ---------------------------------------------------------------------

def make_accommodation_member(
    name: str,
    provider: str,
    rate_multiplier: float = 1.0,
    hotel_index: int = 0,
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """One member of the Accommodation Booking community.

    Members differ in price (``rate_multiplier``), hotel inventory
    (``hotel_index`` selects which hotel of the city they offer, clamped)
    and QoS profile — raw material for the selection-policy benchmarks.
    """
    description = ServiceDescription(
        name=name,
        provider=provider,
        description=f"Accommodation booking by {provider}",
    )
    description.add_operation(OperationSpec(
        name="bookAccommodation",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("checkin", ParameterType.STRING, required=False),
            Parameter("checkout", ParameterType.STRING, required=False),
        ),
        outputs=(
            Parameter("booking_ref", ParameterType.STRING),
            Parameter("accommodation", ParameterType.RECORD),
            Parameter("nightly_rate", ParameterType.FLOAT),
        ),
    ))
    service = ElementaryService(description, profile or ServiceProfile())

    @operation_handler
    def book_accommodation(customer, destination, checkin=None,
                           checkout=None):
        city = _city(destination)
        hotels = city["hotels"]
        hotel = hotels[min(hotel_index, len(hotels) - 1)]
        return {
            "booking_ref": _booking_ref(name, customer, destination),
            "accommodation": {
                "name": hotel["name"],
                "lat": hotel["lat"],
                "lon": hotel["lon"],
            },
            "nightly_rate": round(hotel["rate"] * rate_multiplier, 2),
        }

    service.bind("bookAccommodation", book_accommodation)
    return service


# Attractions & car rental ---------------------------------------------------------

def make_attractions_search(
    provider: str = "SightSeer",
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """Attractions Search (AS): runs in parallel with the bookings."""
    description = ServiceDescription(
        name="AttractionsSearch",
        provider=provider,
        description="Finds attractions at a destination",
    )
    description.add_operation(OperationSpec(
        name="searchAttractions",
        inputs=(Parameter("destination", ParameterType.STRING),),
        outputs=(
            Parameter("major_attraction", ParameterType.RECORD),
            Parameter("attractions", ParameterType.LIST),
        ),
    ))
    service = ElementaryService(description, profile or ServiceProfile(
        latency_mean_ms=55.0, latency_jitter_ms=15.0, cost=0.5,
    ))

    @operation_handler
    def search_attractions(destination):
        city = _city(destination)
        attractions: "List[Dict[str, Any]]" = city["attractions"]
        return {
            "major_attraction": dict(attractions[0]),
            "attractions": [dict(a) for a in attractions],
        }

    service.bind("searchAttractions", search_attractions)
    return service


def make_car_rental(
    provider: str = "RoadRunner",
    profile: Optional[ServiceProfile] = None,
) -> ElementaryService:
    """Car Rental (CR): fires only when the attraction is far away."""
    description = ServiceDescription(
        name="CarRental",
        provider=provider,
        description="Rents cars at the destination",
    )
    description.add_operation(OperationSpec(
        name="rentCar",
        inputs=(
            Parameter("customer", ParameterType.STRING),
            Parameter("destination", ParameterType.STRING),
            Parameter("pickup_date", ParameterType.STRING, required=False),
        ),
        outputs=(
            Parameter("car_ref", ParameterType.STRING),
            Parameter("daily_rate", ParameterType.FLOAT),
            Parameter("agency", ParameterType.STRING),
        ),
    ))
    service = ElementaryService(description, profile or ServiceProfile(
        latency_mean_ms=30.0, latency_jitter_ms=10.0, cost=1.5,
    ))

    @operation_handler
    def rent_car(customer, destination, pickup_date=None):
        _city(destination)  # validates the destination
        return {
            "car_ref": _booking_ref("CR", customer, destination),
            "daily_rate": 65.0,
            "agency": provider,
        }

    service.bind("rentCar", rent_car)
    return service
