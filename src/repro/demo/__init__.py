"""The travel demo scenario (paper §4).

Builds the exact composite service of Figure 2: domestic vs international
flight booking chosen on ``domestic(destination)``, accommodation booking
through a community, attractions search in parallel, and a car rental iff
the major attraction is far from the booked accommodation.
"""

from repro.demo.providers import (
    CITIES,
    make_accommodation_member,
    make_attractions_search,
    make_car_rental,
    make_domestic_flight_booking,
    make_international_flight_booking,
    make_travel_insurance,
)
from repro.demo.travel import (
    TravelScenario,
    build_travel_composite,
    build_travel_scenario,
    deploy_travel_scenario,
)

__all__ = [
    "CITIES",
    "TravelScenario",
    "build_travel_composite",
    "build_travel_scenario",
    "deploy_travel_scenario",
    "make_accommodation_member",
    "make_attractions_search",
    "make_car_rental",
    "make_domestic_flight_booking",
    "make_international_flight_booking",
    "make_travel_insurance",
]
