"""SELF-SERV reproduction: declarative composition and peer-to-peer
execution of web services.

This library reproduces *SELF-SERV: A Platform for Rapid Composition of
Web Services in a Peer-to-Peer Environment* (Sheng, Benatallah, Dumas,
Mak; VLDB 2002): statechart-based composite services, service
communities with policy-driven member selection, statically generated
routing tables, and fully decentralised peer-to-peer orchestration —
plus the centralised baseline the paper argues against and a simulated
network testbed to measure both.

The public face is the v2 :class:`Platform` API — a declarative facade
with fluent provider/composer flows and **handle-based execution**:
``session.submit`` returns an :class:`ExecutionHandle` immediately, and
``submit_many``/``gather`` fan batches of invocations out concurrently
over the peer-to-peer network.

Quickstart::

    from repro import Platform
    from repro.demo import deploy_travel_scenario

    platform = Platform()                     # deterministic sim network
    deployed = deploy_travel_scenario(platform.deployer)
    session = platform.session("alice", "alice-laptop")
    handle = session.submit(
        deployed.address, "arrangeTrip",
        {"customer": "Alice", "destination": "cairns",
         "departure_date": "2026-07-01", "return_date": "2026-07-10"},
    )
    result = handle.result()
    assert result.ok and result.outputs["car_ref"]  # Cairns reef is far!

Under heavy traffic the platform runs on the ``repro.perf`` fast path
(on by default, tuned via :class:`PerfConfig`): routing plans compiled
once at deploy time, ``locate()`` served from a generation-invalidated
cache over an indexed UDDI registry, and optional transport delivery
batching — see ``docs/PERF.md`` and
``benchmarks/results/CLAIM-FASTPATH.txt``.

The v1 :class:`ServiceManager` facade and blocking
:class:`RuntimeClient` calls keep working as a compatibility layer.
"""

from repro.api import (
    Composition,
    ExecutionHandle,
    ExecutionResult,
    Platform,
    PlatformConfig,
    ProviderSite,
    ResolvedBinding,
    Session,
)
from repro.exceptions import SelfServError
from repro.kernel import Actor, ActorKernel
from repro.manager import ServiceManager
from repro.monitoring import ExecutionTracer
from repro.perf import PerfConfig
from repro.resilience import HedgePolicy, ResilienceConfig, RetryPolicy
from repro.net.inproc import InProcTransport
from repro.net.simnet import SimTransport
from repro.runtime.client import RuntimeClient
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.elementary import ElementaryService
from repro.statecharts.builder import StatechartBuilder

__version__ = "2.0.0"

__all__ = [
    # v2 API
    "Platform",
    "PlatformConfig",
    "Session",
    "ExecutionHandle",
    "ExecutionResult",
    "ResolvedBinding",
    "Composition",
    "ProviderSite",
    # resilience
    "HedgePolicy",
    "ResilienceConfig",
    "RetryPolicy",
    # perf fast path
    "PerfConfig",
    # actor kernel
    "Actor",
    "ActorKernel",
    # building blocks
    "CompositeService",
    "ElementaryService",
    "ExecutionTracer",
    "InProcTransport",
    "SelfServError",
    "ServiceCommunity",
    "SimTransport",
    "StatechartBuilder",
    # v1 compatibility layer
    "RuntimeClient",
    "ServiceManager",
    "__version__",
]
