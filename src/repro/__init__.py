"""SELF-SERV reproduction: declarative composition and peer-to-peer
execution of web services.

This library reproduces *SELF-SERV: A Platform for Rapid Composition of
Web Services in a Peer-to-Peer Environment* (Sheng, Benatallah, Dumas,
Mak; VLDB 2002): statechart-based composite services, service
communities with policy-driven member selection, statically generated
routing tables, and fully decentralised peer-to-peer orchestration —
plus the centralised baseline the paper argues against and a simulated
network testbed to measure both.

Quickstart::

    from repro import ServiceManager, SimTransport
    from repro.demo import deploy_travel_scenario

    transport = SimTransport()
    manager = ServiceManager(transport)
    deployed = deploy_travel_scenario(manager.deployer)
    client = manager.client("alice", "alice-laptop")
    result = client.execute(
        *deployed.address, "arrangeTrip",
        {"customer": "Alice", "destination": "cairns",
         "departure_date": "2026-07-01", "return_date": "2026-07-10"},
    )
    assert result.ok and result.outputs["car_ref"]  # Cairns reef is far!
"""

from repro.exceptions import SelfServError
from repro.manager import ServiceManager
from repro.monitoring import ExecutionTracer
from repro.net.inproc import InProcTransport
from repro.net.simnet import SimTransport
from repro.runtime.client import RuntimeClient
from repro.services.community import ServiceCommunity
from repro.services.composite import CompositeService
from repro.services.elementary import ElementaryService
from repro.statecharts.builder import StatechartBuilder

__version__ = "1.0.0"

__all__ = [
    "CompositeService",
    "ElementaryService",
    "ExecutionTracer",
    "InProcTransport",
    "RuntimeClient",
    "SelfServError",
    "ServiceCommunity",
    "ServiceManager",
    "SimTransport",
    "StatechartBuilder",
    "__version__",
]
