"""Service discovery: UDDI + WSDL + SOAP.

"The service discovery engine facilitates the advertisement and location
of services.  It is implemented using [UDDI], [WSDL], and [SOAP].  Service
registration, discovery and invocation are implemented as SOAP calls."
(paper §3)

The original used IBM WSTK 2.4 against a UDDI registry; that toolkit is
rebuilt here in miniature but with the same moving parts and the same
on-the-wire artefacts:

* :mod:`repro.discovery.soap` — SOAP 1.1-style envelopes, encoded to and
  parsed from real XML text for every registry interaction,
* :mod:`repro.discovery.wsdl` — WSDL documents generated from service
  descriptions, published at URLs in an in-memory web,
* :mod:`repro.discovery.registry` — the UDDI registry (businesses,
  services, binding templates, tModels) with find/get/save/delete calls,
  inverted-index-backed inquiry and a mutation ``generation`` counter,
* :mod:`repro.discovery.engine` — the Service Discovery Engine facade
  providing the Publish and Search panels' functionality (Figure 3);
  its ``locate()`` runs on the ``repro.perf`` fast path: a TTL +
  generation-invalidated cache that makes repeated resolutions O(1)
  (see ``docs/PERF.md`` for the invalidation rules).
"""

from repro.discovery.soap import SoapClient, SoapEnvelope, SoapServer
from repro.discovery.wsdl import (
    UrlResolver,
    WsdlDocument,
    wsdl_from_description,
    wsdl_from_xml,
    wsdl_to_xml,
)
from repro.discovery.registry import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    TModel,
    UddiRegistry,
)
from repro.discovery.engine import (
    SearchResult,
    ServiceDiscoveryEngine,
    ServiceListing,
)

__all__ = [
    "BindingTemplate",
    "BusinessEntity",
    "BusinessService",
    "SearchResult",
    "ServiceDiscoveryEngine",
    "ServiceListing",
    "SoapClient",
    "SoapEnvelope",
    "SoapServer",
    "TModel",
    "UddiRegistry",
    "UrlResolver",
    "WsdlDocument",
    "wsdl_from_description",
    "wsdl_from_xml",
    "wsdl_to_xml",
]
