"""SOAP 1.1-style envelopes and a registry-side dispatcher.

Every registry interaction goes through :class:`SoapClient.call`, which
*really* serialises the request to XML bytes and parses the response back,
so the XML encode/decode path the original platform exercised on every
UDDI operation is exercised here too.

The body encoding maps Python values to a small XML vocabulary::

    <value type="string|int|float|boolean|null">text</value>
    <record> <field name="...">value...</field> ... </record>
    <list> value... </list>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.exceptions import SoapFault, XmlError
from repro.xmlio import element, parse_document, subelement, to_bytes

SOAP_ENV = "soapenv"


def _encode_value(parent: ET.Element, value: Any) -> None:
    if value is None:
        subelement(parent, "value", {"type": "null"})
    elif isinstance(value, bool):
        subelement(parent, "value", {"type": "boolean"},
                   text="true" if value else "false")
    elif isinstance(value, int):
        subelement(parent, "value", {"type": "int"}, text=str(value))
    elif isinstance(value, float):
        subelement(parent, "value", {"type": "float"}, text=repr(value))
    elif isinstance(value, str):
        subelement(parent, "value", {"type": "string"}, text=value)
    elif isinstance(value, Mapping):
        record = subelement(parent, "record")
        for key, item in value.items():
            field_node = subelement(record, "field", {"name": str(key)})
            _encode_value(field_node, item)
    elif isinstance(value, (list, tuple)):
        list_node = subelement(parent, "list")
        for item in value:
            _encode_value(list_node, item)
    else:
        raise XmlError(
            f"cannot SOAP-encode value of type {type(value).__name__}"
        )


def _decode_value(node: ET.Element) -> Any:
    if node.tag == "value":
        vtype = node.get("type", "string")
        text = node.text or ""
        if vtype == "null":
            return None
        if vtype == "boolean":
            return text.strip() == "true"
        if vtype == "int":
            return int(text)
        if vtype == "float":
            return float(text)
        if vtype == "string":
            return text
        raise XmlError(f"unknown SOAP value type {vtype!r}")
    if node.tag == "record":
        result: Dict[str, Any] = {}
        for field_node in node.findall("field"):
            name = field_node.get("name")
            if name is None:
                raise XmlError("<field> is missing its name")
            children = list(field_node)
            if len(children) != 1:
                raise XmlError(f"<field name={name!r}> must hold one value")
            result[name] = _decode_value(children[0])
        return result
    if node.tag == "list":
        return [_decode_value(child) for child in node]
    raise XmlError(f"unexpected SOAP body element <{node.tag}>")


@dataclass
class SoapEnvelope:
    """A SOAP message: an operation name plus a payload mapping."""

    operation: str
    payload: Dict[str, Any] = field(default_factory=dict)
    is_fault: bool = False
    faultcode: str = ""
    faultstring: str = ""

    def to_bytes(self) -> bytes:
        """Encode as an XML document (UTF-8, with declaration)."""
        envelope = element(f"{SOAP_ENV}:Envelope", {
            f"xmlns:{SOAP_ENV}": "http://schemas.xmlsoap.org/soap/envelope/",
        })
        body = subelement(envelope, f"{SOAP_ENV}:Body")
        if self.is_fault:
            fault = subelement(body, f"{SOAP_ENV}:Fault")
            subelement(fault, "faultcode", text=self.faultcode)
            subelement(fault, "faultstring", text=self.faultstring)
        else:
            call = subelement(body, "call", {"operation": self.operation})
            _encode_value(call, dict(self.payload))
        return to_bytes(envelope)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SoapEnvelope":
        # ElementTree expands declared prefixes to {uri}Tag form on parse.
        ns = "{http://schemas.xmlsoap.org/soap/envelope/}"
        root = parse_document(data)
        if root.tag not in (f"{SOAP_ENV}:Envelope", f"{ns}Envelope"):
            raise XmlError(f"not a SOAP envelope: <{root.tag}>")
        body = root.find(f"{ns}Body")
        if body is None:
            body = root.find(f"{SOAP_ENV}:Body")
        if body is None:
            raise XmlError("SOAP envelope has no Body")
        fault = body.find(f"{ns}Fault")
        if fault is None:
            fault = body.find(f"{SOAP_ENV}:Fault")
        if fault is not None:
            code_node = fault.find("faultcode")
            string_node = fault.find("faultstring")
            return cls(
                operation="",
                is_fault=True,
                faultcode=(code_node.text or "") if code_node is not None
                else "soapenv:Server",
                faultstring=(string_node.text or "")
                if string_node is not None else "",
            )
        call = body.find("call")
        if call is None:
            raise XmlError("SOAP body holds neither <call> nor Fault")
        operation = call.get("operation")
        if operation is None:
            raise XmlError("SOAP <call> is missing its operation")
        children = list(call)
        if len(children) != 1:
            raise XmlError("SOAP <call> must hold exactly one payload value")
        payload = _decode_value(children[0])
        if not isinstance(payload, dict):
            raise XmlError("SOAP payload must be a record")
        return cls(operation=operation, payload=payload)


SoapHandler = Callable[[Dict[str, Any]], Dict[str, Any]]


class SoapServer:
    """Dispatches SOAP calls to named handlers (the registry's HTTP side)."""

    def __init__(self, name: str = "soap-server") -> None:
        self.name = name
        self._handlers: Dict[str, SoapHandler] = {}
        self.calls_served = 0

    def expose(self, operation: str, handler: SoapHandler) -> None:
        self._handlers[operation] = handler

    def handle(self, request_bytes: bytes) -> bytes:
        """Process one encoded request; always returns an encoded response."""
        try:
            request = SoapEnvelope.from_bytes(request_bytes)
            handler = self._handlers.get(request.operation)
            if handler is None:
                raise SoapFault(
                    "soapenv:Client",
                    f"unknown operation {request.operation!r}",
                )
            self.calls_served += 1
            result = handler(request.payload)
            return SoapEnvelope(
                operation=f"{request.operation}Response",
                payload=result or {},
            ).to_bytes()
        except SoapFault as fault:
            return SoapEnvelope(
                operation="", is_fault=True,
                faultcode=fault.faultcode, faultstring=fault.faultstring,
            ).to_bytes()
        except XmlError as exc:
            return SoapEnvelope(
                operation="", is_fault=True,
                faultcode="soapenv:Client", faultstring=str(exc),
            ).to_bytes()
        except Exception as exc:  # noqa: BLE001 - server boundary
            return SoapEnvelope(
                operation="", is_fault=True,
                faultcode="soapenv:Server", faultstring=str(exc),
            ).to_bytes()


class SoapClient:
    """Client side: encodes a call, ships bytes, decodes the response."""

    def __init__(self, server: SoapServer) -> None:
        self._server = server
        self.calls_made = 0

    def call(
        self, operation: str, payload: Optional[Mapping[str, Any]] = None
    ) -> "Dict[str, Any]":
        """Perform one SOAP call; raises :class:`SoapFault` on fault."""
        self.calls_made += 1
        request = SoapEnvelope(operation=operation,
                               payload=dict(payload or {}))
        response_bytes = self._server.handle(request.to_bytes())
        response = SoapEnvelope.from_bytes(response_bytes)
        if response.is_fault:
            raise SoapFault(response.faultcode, response.faultstring)
        return response.payload
