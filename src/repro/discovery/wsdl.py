"""WSDL documents: service interface descriptions published at URLs.

"Before a service can be published, its WSDL descriptions should be
created and deployed.  This essentially means placing the WSDL
descriptions so that they can be retrieved using public URLs." (paper §4)

The *public URLs* are modelled by :class:`UrlResolver`, an in-memory web:
publishing stores the rendered XML text under a URL, and retrieval parses
it back — the same store/parse round-trip as the original.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import DiscoveryError, XmlError
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.xmlio import (
    children,
    element,
    parse_document,
    read_attr,
    read_optional_attr,
    subelement,
    to_string,
)


@dataclass(frozen=True)
class WsdlOperation:
    """One operation: input and output message parts with wire types."""

    name: str
    inputs: Tuple[Tuple[str, str], ...]  # (part name, type)
    outputs: Tuple[Tuple[str, str], ...]
    documentation: str = ""


@dataclass
class WsdlDocument:
    """A minimal WSDL 1.1-shaped document."""

    service_name: str
    provider: str = ""
    documentation: str = ""
    operations: List[WsdlOperation] = field(default_factory=list)
    access_point: str = ""  # the service's invocation address

    def operation_names(self) -> "List[str]":
        return [op.name for op in self.operations]

    def has_operation(self, name: str) -> bool:
        return any(op.name == name for op in self.operations)


def wsdl_from_description(
    description: ServiceDescription, access_point: str = ""
) -> WsdlDocument:
    """Derive the WSDL document of a service description."""
    operations = [
        WsdlOperation(
            name=spec.name,
            inputs=tuple((p.name, p.type.value) for p in spec.inputs),
            outputs=tuple((p.name, p.type.value) for p in spec.outputs),
            documentation=spec.description,
        )
        for spec in description.operations.values()
    ]
    return WsdlDocument(
        service_name=description.name,
        provider=description.provider,
        documentation=description.description,
        operations=operations,
        access_point=access_point,
    )


def description_from_wsdl(document: WsdlDocument) -> ServiceDescription:
    """Reconstruct a service description from a WSDL document."""
    description = ServiceDescription(
        name=document.service_name,
        provider=document.provider,
        description=document.documentation,
    )
    for op in document.operations:
        description.add_operation(OperationSpec(
            name=op.name,
            inputs=tuple(
                Parameter(name, ParameterType(type_text))
                for name, type_text in op.inputs
            ),
            outputs=tuple(
                Parameter(name, ParameterType(type_text))
                for name, type_text in op.outputs
            ),
            description=op.documentation,
        ))
    return description


def wsdl_to_xml(document: WsdlDocument) -> ET.Element:
    """Render as a ``<definitions>`` element (WSDL 1.1 shape)."""
    root = element("definitions", {
        "name": document.service_name,
        "provider": document.provider,
    })
    if document.documentation:
        subelement(root, "documentation", text=document.documentation)
    port_type = subelement(root, "portType",
                           {"name": f"{document.service_name}PortType"})
    for op in document.operations:
        op_node = subelement(port_type, "operation", {"name": op.name})
        if op.documentation:
            subelement(op_node, "documentation", text=op.documentation)
        input_node = subelement(op_node, "input")
        for part_name, part_type in op.inputs:
            subelement(input_node, "part",
                       {"name": part_name, "type": part_type})
        output_node = subelement(op_node, "output")
        for part_name, part_type in op.outputs:
            subelement(output_node, "part",
                       {"name": part_name, "type": part_type})
    service_node = subelement(root, "service",
                              {"name": document.service_name})
    subelement(service_node, "port", {
        "name": f"{document.service_name}Port",
        "location": document.access_point,
    })
    return root


def wsdl_from_xml(source: Union[str, bytes, ET.Element]) -> WsdlDocument:
    """Parse a ``<definitions>`` document back into a :class:`WsdlDocument`."""
    root = source if isinstance(source, ET.Element) else parse_document(source)
    if root.tag != "definitions":
        raise XmlError(f"expected <definitions>, found <{root.tag}>")
    doc_node = root.find("documentation")
    operations: List[WsdlOperation] = []
    port_type = root.find("portType")
    if port_type is not None:
        for op_node in children(port_type, "operation"):
            op_doc = op_node.find("documentation")
            input_node = op_node.find("input")
            output_node = op_node.find("output")
            inputs = tuple(
                (read_attr(p, "name"), read_optional_attr(p, "type", "any"))
                for p in (children(input_node, "part")
                          if input_node is not None else ())
            )
            outputs = tuple(
                (read_attr(p, "name"), read_optional_attr(p, "type", "any"))
                for p in (children(output_node, "part")
                          if output_node is not None else ())
            )
            operations.append(WsdlOperation(
                name=read_attr(op_node, "name"),
                inputs=inputs,
                outputs=outputs,
                documentation=(op_doc.text or "").strip()
                if op_doc is not None else "",
            ))
    access_point = ""
    service_node = root.find("service")
    if service_node is not None:
        port = service_node.find("port")
        if port is not None:
            access_point = read_optional_attr(port, "location", "") or ""
    return WsdlDocument(
        service_name=read_attr(root, "name"),
        provider=read_optional_attr(root, "provider", "") or "",
        documentation=(doc_node.text or "").strip()
        if doc_node is not None else "",
        operations=operations,
        access_point=access_point,
    )


class UrlResolver:
    """The in-memory web where WSDL documents are published.

    Stores rendered XML *text* (not objects) so retrieval really re-parses
    — a malformed publish fails at fetch time, like a real web server
    serving a broken file.
    """

    def __init__(self) -> None:
        self._pages: Dict[str, str] = {}

    def publish(self, url: str, document: WsdlDocument) -> str:
        """Place ``document`` at ``url``; returns the URL."""
        if not url.startswith(("http://", "https://")):
            raise DiscoveryError(f"not a public URL: {url!r}")
        self._pages[url] = to_string(wsdl_to_xml(document))
        return url

    def publish_text(self, url: str, text: str) -> str:
        """Place raw XML text (used by tests to simulate corrupt pages)."""
        if not url.startswith(("http://", "https://")):
            raise DiscoveryError(f"not a public URL: {url!r}")
        self._pages[url] = text
        return url

    def fetch(self, url: str) -> WsdlDocument:
        """Retrieve and parse the document at ``url``."""
        page = self._pages.get(url)
        if page is None:
            raise DiscoveryError(f"404: no document at {url!r}")
        return wsdl_from_xml(page)

    def exists(self, url: str) -> bool:
        return url in self._pages

    def urls(self) -> "List[str]":
        return sorted(self._pages.keys())
