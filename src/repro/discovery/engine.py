"""The Service Discovery Engine: the Publish and Search panels of Fig. 3.

The engine is the user-facing facade over the UDDI registry (spoken to via
SOAP), the WSDL web, and the runtime.  It supports the three demo flows:

* **Publish** — create/deploy the WSDL description at a public URL, then
  register the provider, service and binding in the UDDI registry,
* **Search** — find services by provider, service name or operation, and
  browse provider -> services -> operations with detail views,
* **Execute** — resolve a found service's binding to its access point and
  run an operation through a :class:`~repro.runtime.RuntimeClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import DiscoveryError, SoapFault
from repro.discovery.registry import UddiRegistry
from repro.discovery.soap import SoapClient
from repro.discovery.wsdl import (
    UrlResolver,
    WsdlDocument,
    wsdl_from_description,
)
from repro.net.transport import Transport
from repro.perf.cache import LocateCache
from repro.perf.config import PerfConfig
from repro.perf.events import PerfEventLog
from repro.runtime.client import RuntimeClient
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import (
    ExecutionResult,
    ResolvedBinding,
    wrapper_endpoint,
)
from repro.services.description import ServiceDescription

ACCESS_SCHEME = "selfserv://"


def make_access_point(node_id: str, endpoint: str) -> str:
    """Render a runtime address as a UDDI access-point URL."""
    return f"{ACCESS_SCHEME}{node_id}/{endpoint}"


def parse_access_point(access_point: str) -> "Tuple[str, str]":
    """Parse an access-point URL back into ``(node, endpoint)``."""
    if not access_point.startswith(ACCESS_SCHEME):
        raise DiscoveryError(
            f"unsupported access point {access_point!r} (expected "
            f"{ACCESS_SCHEME}node/endpoint)"
        )
    rest = access_point[len(ACCESS_SCHEME):]
    node, sep, endpoint = rest.partition("/")
    if not sep or not node or not endpoint:
        raise DiscoveryError(f"malformed access point {access_point!r}")
    return node, endpoint


@dataclass
class ServiceListing:
    """One service in a search result, with browsable detail."""

    service_key: str
    name: str
    provider: str
    description: str = ""
    category: str = ""
    access_point: str = ""
    wsdl_url: str = ""
    operations: List[str] = field(default_factory=list)


@dataclass
class SearchResult:
    """Providers with their services, as the Search panel displays them."""

    providers: List[str] = field(default_factory=list)
    listings: List[ServiceListing] = field(default_factory=list)

    def by_provider(self) -> "Dict[str, List[ServiceListing]]":
        tree: Dict[str, List[ServiceListing]] = {p: [] for p in self.providers}
        for listing in self.listings:
            tree.setdefault(listing.provider, []).append(listing)
        return tree

    def find(self, service_name: str) -> ServiceListing:
        for listing in self.listings:
            if listing.name == service_name:
                return listing
        raise DiscoveryError(
            f"service {service_name!r} is not in this search result"
        )

    def render(self) -> str:
        """ASCII rendering of the browse tree (the Search panel's list)."""
        lines: List[str] = []
        for provider, listings in sorted(self.by_provider().items()):
            lines.append(f"{provider}")
            for listing in listings:
                lines.append(f"  └─ {listing.name}")
                for op in listing.operations:
                    lines.append(f"      · {op}")
        return "\n".join(lines) if lines else "(no matches)"


class ServiceDiscoveryEngine:
    """Facade over UDDI + WSDL + runtime execution."""

    def __init__(
        self,
        transport: Transport,
        directory: ServiceDirectory,
        registry: Optional[UddiRegistry] = None,
        resolver: Optional[UrlResolver] = None,
        perf: Optional[PerfConfig] = None,
        perf_events: Optional[PerfEventLog] = None,
    ) -> None:
        self.transport = transport
        self.directory = directory
        self.registry = registry or UddiRegistry()
        self.resolver = resolver or UrlResolver()
        self._soap = SoapClient(self.registry.as_soap_server())
        self.perf = perf or PerfConfig()
        #: The ``locate()`` fast path: a TTL + generation-invalidated
        #: LRU cache of resolved bindings (``None`` when disabled via
        #: ``PerfConfig.locate_cache_size == 0``).
        self.locate_cache: Optional[LocateCache] = (
            LocateCache(
                size=self.perf.locate_cache_size,
                ttl_ms=self.perf.locate_cache_ttl_ms,
                now=transport.now_ms,
                events=perf_events,
            )
            if self.perf.locate_cache_size > 0 else None
        )
        #: Optional callback ``(description, category, contact)`` fired
        #: after a successful publish; the durability layer journals
        #: publishes through it so recovery can replay them.
        self.on_publish = None

    # Publish flow ----------------------------------------------------------

    def publish(
        self,
        description: ServiceDescription,
        category: str = "",
        contact: str = "",
    ) -> ServiceListing:
        """Publish a (deployed) service: WSDL first, then UDDI entries.

        The service's wrapper must already be in the runtime directory —
        publication advertises a reachable access point, it does not
        deploy anything.
        """
        if not self.directory.knows(description.name):
            raise DiscoveryError(
                f"service {description.name!r} must be deployed before it "
                f"is published"
            )
        node_id, endpoint = self.directory.resolve(description.name)
        access_point = make_access_point(node_id, endpoint)
        wsdl_url = f"http://{node_id}/wsdl/{description.name}.wsdl"
        document = wsdl_from_description(description, access_point)
        self.resolver.publish(wsdl_url, document)

        provider = description.provider or "unknown-provider"
        businesses = self._soap.call("find_business", {"name": provider})
        exact = [
            b for b in businesses["businesses"] if b["name"] == provider
        ]
        if exact:
            business_key = exact[0]["businessKey"]
        else:
            created = self._soap.call("save_business", {
                "name": provider,
                "contact": contact,
            })
            business_key = created["businessKey"]

        service_record = self._soap.call("save_service", {
            "businessKey": business_key,
            "name": description.name,
            "description": description.description,
            "category": category,
        })
        self._soap.call("save_binding", {
            "serviceKey": service_record["serviceKey"],
            "accessPoint": access_point,
            "wsdlUrl": wsdl_url,
        })
        listing = self._listing_for(service_record, provider)
        if self.on_publish is not None:
            self.on_publish(description, category, contact)
        return listing

    def unpublish(self, service_name: str) -> None:
        """Remove a service's UDDI entries (keeps the WSDL page)."""
        services = self._soap.call("find_service", {"name": service_name})
        exact = [
            s for s in services["services"] if s["name"] == service_name
        ]
        if not exact:
            raise DiscoveryError(
                f"service {service_name!r} is not published"
            )
        for record in exact:
            self._soap.call("delete_service",
                            {"serviceKey": record["serviceKey"]})

    # Search flow --------------------------------------------------------------

    def search(
        self,
        provider: str = "",
        service_name: str = "",
        operation: str = "",
    ) -> SearchResult:
        """Search by provider, service name and/or operation (Fig. 3)."""
        if provider:
            businesses = self._soap.call(
                "find_business", {"name": provider}
            )["businesses"]
        else:
            businesses = self._soap.call(
                "find_business", {"name": ""}
            )["businesses"]

        result = SearchResult()
        for business in businesses:
            services = self._soap.call("get_businessDetail", {
                "businessKey": business["businessKey"],
            })["services"]
            matched: List[ServiceListing] = []
            for record in services:
                if (
                    service_name
                    and service_name.lower() not in record["name"].lower()
                ):
                    continue
                listing = self._listing_for(record, business["name"])
                if operation and not any(
                    operation.lower() in op.lower()
                    for op in listing.operations
                ):
                    continue
                matched.append(listing)
            if matched:
                result.providers.append(business["name"])
                result.listings.extend(matched)
        return result

    def service_detail(self, service_name: str) -> ServiceListing:
        """Detail view of one published service (right panel of Fig. 3)."""
        services = self._soap.call("find_service", {"name": service_name})
        exact = [
            s for s in services["services"] if s["name"] == service_name
        ]
        if not exact:
            raise DiscoveryError(f"service {service_name!r} is not published")
        record = exact[0]
        business = self._soap.call("get_businessDetail", {
            "businessKey": record["businessKey"],
        })["business"]
        return self._listing_for(record, business["name"])

    def fetch_wsdl(self, service_name: str) -> WsdlDocument:
        """Retrieve the service's WSDL document via its published URL."""
        listing = self.service_detail(service_name)
        if not listing.wsdl_url:
            raise DiscoveryError(
                f"service {service_name!r} has no WSDL binding"
            )
        return self.resolver.fetch(listing.wsdl_url)

    def _listing_for(
        self, record: "Dict[str, Any]", provider: str
    ) -> ServiceListing:
        detail = self._soap.call("get_serviceDetail", {
            "serviceKey": record["serviceKey"],
        })
        bindings = detail["bindings"]
        access_point = bindings[0]["accessPoint"] if bindings else ""
        wsdl_url = bindings[0]["wsdlUrl"] if bindings else ""
        operations: List[str] = []
        if wsdl_url and self.resolver.exists(wsdl_url):
            operations = self.resolver.fetch(wsdl_url).operation_names()
        return ServiceListing(
            service_key=record["serviceKey"],
            name=record["name"],
            provider=provider,
            description=record.get("description", ""),
            category=record.get("category", ""),
            access_point=access_point,
            wsdl_url=wsdl_url,
            operations=operations,
        )

    # Execute flow ------------------------------------------------------------------

    def invalidate_locates(
        self, service_name: Optional[str] = None, reason: str = ""
    ) -> None:
        """Flush ``locate()`` cache entries (one service, or all of them).

        Invalidation signals that pass through the registry or the
        directory are handled automatically by generation checks; this
        hook is for churn they cannot see — above all community
        membership changes, which re-point a community *name* at
        different behaviour without touching its published binding.
        """
        if self.locate_cache is not None:
            self.locate_cache.invalidate(service_name, reason=reason)

    def _generation_token(self) -> "Tuple[int, int]":
        """The invalidation token ``locate()`` cache entries live under."""
        return (self.registry.generation, self.directory.generation)

    def locate(self, service_name: str) -> ResolvedBinding:
        """Resolve a published service to a typed runtime binding.

        This is the "locate" half of locate-and-execute: the access point
        comes from the UDDI binding, so an unpublished service raises
        :class:`DiscoveryError` exactly as the Execute button would fail.
        The returned binding is what :meth:`repro.api.Session.submit`
        accepts as a target.

        Repeated locates are served from :attr:`locate_cache` (when
        enabled): a hit skips the SOAP/UDDI round trips entirely, and
        staleness is impossible in-process because every entry is
        checked against the registry and directory generations (plus an
        optional TTL) — see ``docs/PERF.md`` for the invalidation rules.
        """
        token = self._generation_token()
        if self.locate_cache is not None:
            cached = self.locate_cache.get(service_name, token)
            if cached is not None:
                return cached
        listing = self.service_detail(service_name)
        if not listing.access_point:
            raise DiscoveryError(
                f"service {service_name!r} has no access point binding"
            )
        node, endpoint = parse_access_point(listing.access_point)
        binding = ResolvedBinding(
            service=listing.name,
            node=node,
            endpoint=endpoint,
            operations=tuple(listing.operations),
            access_point=listing.access_point,
            wsdl_url=listing.wsdl_url,
        )
        if self.locate_cache is not None:
            # Filled under the token observed *before* the resolution:
            # a concurrent mutation between read and fill re-misses.
            self.locate_cache.put(service_name, binding, token)
        return binding

    def execute(
        self,
        client: RuntimeClient,
        service_name: str,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        timeout_ms: Optional[float] = 60_000.0,
    ) -> ExecutionResult:
        """Locate a published service and execute one of its operations.

        This is the Execute button: the access point comes from the UDDI
        binding (not from the runtime directory), so executing an
        unpublished service fails exactly as it would for a real end user.
        """
        binding = self.locate(service_name)
        if not binding.supports(operation):
            raise DiscoveryError(
                f"service {service_name!r} does not advertise operation "
                f"{operation!r}; advertised: {list(binding.operations)}"
            )
        return client.execute(binding.node, binding.endpoint, operation,
                              arguments, timeout_ms=timeout_ms)
