"""The UDDI registry.

A faithful miniature of UDDI v2's data model — businessEntity,
businessService, bindingTemplate, tModel — with the inquiry and publish
API subset the demo uses: ``save_*``, ``find_business``, ``find_service``,
``get_serviceDetail``, ``delete_service``.  All calls are exposed through
a :class:`~repro.discovery.soap.SoapServer`, so every registration and
query round-trips through XML exactly as the paper describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.exceptions import (
    DuplicateRegistrationError,
    NotRegisteredError,
    SoapFault,
)
from repro.discovery.soap import SoapServer

_key_counter = itertools.count(1)


def _new_key(prefix: str) -> str:
    return f"uddi:{prefix}:{next(_key_counter):06d}"


@dataclass
class BusinessEntity:
    """A provider organisation."""

    business_key: str
    name: str
    description: str = ""
    contact: str = ""

    def to_record(self) -> "Dict[str, Any]":
        return {
            "businessKey": self.business_key,
            "name": self.name,
            "description": self.description,
            "contact": self.contact,
        }


@dataclass
class BusinessService:
    """A service advertised by a provider."""

    service_key: str
    business_key: str
    name: str
    description: str = ""
    category: str = ""

    def to_record(self) -> "Dict[str, Any]":
        return {
            "serviceKey": self.service_key,
            "businessKey": self.business_key,
            "name": self.name,
            "description": self.description,
            "category": self.category,
        }


@dataclass
class BindingTemplate:
    """Where and how a service is reached: access point + WSDL URL."""

    binding_key: str
    service_key: str
    access_point: str
    wsdl_url: str = ""

    def to_record(self) -> "Dict[str, Any]":
        return {
            "bindingKey": self.binding_key,
            "serviceKey": self.service_key,
            "accessPoint": self.access_point,
            "wsdlUrl": self.wsdl_url,
        }


@dataclass
class TModel:
    """A technical fingerprint (here: interface/category marker)."""

    tmodel_key: str
    name: str
    overview_url: str = ""

    def to_record(self) -> "Dict[str, Any]":
        return {
            "tModelKey": self.tmodel_key,
            "name": self.name,
            "overviewUrl": self.overview_url,
        }


class UddiRegistry:
    """The registry proper: storage plus inquiry/publish operations.

    Inquiry is index-backed (``repro.perf``): inverted indexes over
    business name, owning business and category are maintained on every
    publish/delete, so ``find_*`` calls touch only candidate entries
    instead of scanning the whole registry.  Every mutation bumps
    :attr:`generation`, the invalidation signal the discovery engine's
    ``locate()`` cache checks per lookup.
    """

    def __init__(self) -> None:
        self._businesses: Dict[str, BusinessEntity] = {}
        self._services: Dict[str, BusinessService] = {}
        self._bindings: Dict[str, BindingTemplate] = {}
        self._tmodels: Dict[str, TModel] = {}
        # Inverted indexes (maintained by the publish API).
        self._business_key_by_name: Dict[str, str] = {}
        self._services_by_business: "Dict[str, Set[str]]" = {}
        self._services_by_category: "Dict[str, Set[str]]" = {}
        self._bindings_by_service: "Dict[str, List[str]]" = {}
        #: Monotonic mutation counter: bumped by every save/delete, so
        #: any cache keyed on registry state can invalidate exactly.
        self.generation = 0

    def _mutated(self) -> None:
        self.generation += 1

    # Publish API ------------------------------------------------------------

    def save_business(
        self, name: str, description: str = "", contact: str = ""
    ) -> BusinessEntity:
        """Register a provider; name must be unique (demo simplification)."""
        if self.find_business_by_name(name) is not None:
            raise DuplicateRegistrationError(
                f"business {name!r} is already registered"
            )
        entity = BusinessEntity(
            business_key=_new_key("business"),
            name=name,
            description=description,
            contact=contact,
        )
        self._businesses[entity.business_key] = entity
        self._business_key_by_name[name] = entity.business_key
        self._services_by_business[entity.business_key] = set()
        self._mutated()
        return entity

    def save_service(
        self,
        business_key: str,
        name: str,
        description: str = "",
        category: str = "",
    ) -> BusinessService:
        if business_key not in self._businesses:
            raise NotRegisteredError(f"unknown business {business_key!r}")
        duplicate = any(
            self._services[key].name == name
            for key in self._services_by_business.get(business_key, ())
        )
        if duplicate:
            raise DuplicateRegistrationError(
                f"business {business_key!r} already advertises a service "
                f"named {name!r}"
            )
        service = BusinessService(
            service_key=_new_key("service"),
            business_key=business_key,
            name=name,
            description=description,
            category=category,
        )
        self._services[service.service_key] = service
        self._services_by_business[business_key].add(service.service_key)
        if category:
            self._services_by_category.setdefault(category, set()).add(
                service.service_key
            )
        self._bindings_by_service[service.service_key] = []
        self._mutated()
        return service

    def save_binding(
        self, service_key: str, access_point: str, wsdl_url: str = ""
    ) -> BindingTemplate:
        if service_key not in self._services:
            raise NotRegisteredError(f"unknown service {service_key!r}")
        binding = BindingTemplate(
            binding_key=_new_key("binding"),
            service_key=service_key,
            access_point=access_point,
            wsdl_url=wsdl_url,
        )
        self._bindings[binding.binding_key] = binding
        self._bindings_by_service.setdefault(service_key, []).append(
            binding.binding_key
        )
        self._mutated()
        return binding

    def save_tmodel(self, name: str, overview_url: str = "") -> TModel:
        tmodel = TModel(
            tmodel_key=_new_key("tmodel"),
            name=name,
            overview_url=overview_url,
        )
        self._tmodels[tmodel.tmodel_key] = tmodel
        self._mutated()
        return tmodel

    def delete_service(self, service_key: str) -> None:
        service = self._services.get(service_key)
        if service is None:
            raise NotRegisteredError(f"unknown service {service_key!r}")
        del self._services[service_key]
        self._services_by_business.get(service.business_key, set()).discard(
            service_key
        )
        if service.category:
            by_category = self._services_by_category.get(service.category)
            if by_category is not None:
                by_category.discard(service_key)
                if not by_category:
                    del self._services_by_category[service.category]
        for binding_key in self._bindings_by_service.pop(service_key, []):
            del self._bindings[binding_key]
        self._mutated()

    # Inquiry API -----------------------------------------------------------------

    def find_business_by_name(self, name: str) -> Optional[BusinessEntity]:
        key = self._business_key_by_name.get(name)
        return self._businesses[key] if key is not None else None

    def find_businesses(self, name_pattern: str = "") -> "List[BusinessEntity]":
        """Case-insensitive substring match, empty pattern matches all."""
        pattern = name_pattern.lower()
        return sorted(
            (
                e for e in self._businesses.values()
                if pattern in e.name.lower()
            ),
            key=lambda e: e.name,
        )

    def find_services(
        self,
        name_pattern: str = "",
        business_key: str = "",
        category: str = "",
    ) -> "List[BusinessService]":
        """Find services, narrowing through the smallest inverted index.

        ``business_key`` and ``category`` are exact attributes with
        indexes; ``name_pattern`` is a substring match applied to the
        candidates (only a full scan when it is the sole criterion).
        """
        candidates: "Optional[Set[str]]" = None
        if business_key:
            candidates = self._services_by_business.get(business_key, set())
        if category:
            by_category = self._services_by_category.get(category, set())
            candidates = (
                by_category if candidates is None
                else candidates & by_category
            )
        pool = (
            self._services.values() if candidates is None
            else (self._services[key] for key in candidates)
        )
        pattern = name_pattern.lower()
        found = [
            service for service in pool
            if not pattern or pattern in service.name.lower()
        ]
        return sorted(found, key=lambda s: s.name)

    def get_business(self, business_key: str) -> BusinessEntity:
        entity = self._businesses.get(business_key)
        if entity is None:
            raise NotRegisteredError(f"unknown business {business_key!r}")
        return entity

    def get_service(self, service_key: str) -> BusinessService:
        service = self._services.get(service_key)
        if service is None:
            raise NotRegisteredError(f"unknown service {service_key!r}")
        return service

    def bindings_of(self, service_key: str) -> "List[BindingTemplate]":
        self.get_service(service_key)
        return sorted(
            (
                self._bindings[key]
                for key in self._bindings_by_service.get(service_key, ())
            ),
            key=lambda b: b.binding_key,
        )

    def services_of(self, business_key: str) -> "List[BusinessService]":
        self.get_business(business_key)
        return self.find_services(business_key=business_key)

    def statistics(self) -> "Dict[str, int]":
        return {
            "businesses": len(self._businesses),
            "services": len(self._services),
            "bindings": len(self._bindings),
            "tmodels": len(self._tmodels),
        }

    # SOAP exposure ---------------------------------------------------------------

    def as_soap_server(self) -> SoapServer:
        """Expose the registry API over SOAP (the UDDI 'wire')."""
        server = SoapServer("uddi-registry")

        def guard(func):
            def handler(payload: "Dict[str, Any]") -> "Dict[str, Any]":
                try:
                    return func(payload)
                except (NotRegisteredError,
                        DuplicateRegistrationError) as exc:
                    raise SoapFault("soapenv:Client", str(exc)) from exc
            return handler

        server.expose("save_business", guard(lambda p: self.save_business(
            p["name"], p.get("description", ""), p.get("contact", ""),
        ).to_record()))
        server.expose("save_service", guard(lambda p: self.save_service(
            p["businessKey"], p["name"], p.get("description", ""),
            p.get("category", ""),
        ).to_record()))
        server.expose("save_binding", guard(lambda p: self.save_binding(
            p["serviceKey"], p["accessPoint"], p.get("wsdlUrl", ""),
        ).to_record()))
        server.expose("save_tModel", guard(lambda p: self.save_tmodel(
            p["name"], p.get("overviewUrl", ""),
        ).to_record()))
        server.expose("delete_service", guard(
            lambda p: (self.delete_service(p["serviceKey"]), {})[1]
        ))
        server.expose("find_business", guard(lambda p: {
            "businesses": [
                e.to_record()
                for e in self.find_businesses(p.get("name", ""))
            ],
        }))
        server.expose("find_service", guard(lambda p: {
            "services": [
                s.to_record()
                for s in self.find_services(
                    p.get("name", ""), p.get("businessKey", ""),
                    p.get("category", ""),
                )
            ],
        }))
        server.expose("get_serviceDetail", guard(lambda p: {
            "service": self.get_service(p["serviceKey"]).to_record(),
            "bindings": [
                b.to_record() for b in self.bindings_of(p["serviceKey"])
            ],
        }))
        server.expose("get_businessDetail", guard(lambda p: {
            "business": self.get_business(p["businessKey"]).to_record(),
            "services": [
                s.to_record() for s in self.services_of(p["businessKey"])
            ],
        }))
        return server
