"""Selection policies: ordering community members for delegation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import CommunityError
from repro.selection.history import ExecutionHistory
from repro.selection.scoring import AttributeWeights, score_candidates
from repro.services.community import MemberRecord


@dataclass(frozen=True)
class SelectionRequest:
    """Context of one delegation decision."""

    operation: str
    arguments: Mapping[str, Any] = field(default_factory=dict)


class SelectionPolicy:
    """Strategy interface: order candidates by preference.

    ``rank`` must return a permutation of ``candidates``; the community
    wrapper invokes the first member and fails over down the list.
    """

    name = "abstract"

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        raise NotImplementedError


class RandomPolicy(SelectionPolicy):
    """Uniform random order — the no-information baseline."""

    name = "random"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        shuffled = list(candidates)
        self.rng.shuffle(shuffled)
        return shuffled


class RoundRobinPolicy(SelectionPolicy):
    """Rotate through members, spreading load evenly regardless of QoS."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next_index = 0

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        ordered = sorted(candidates, key=lambda m: m.service_name)
        if not ordered:
            return []
        start = self._next_index % len(ordered)
        self._next_index += 1
        return ordered[start:] + ordered[:start]


class LeastLoadedPolicy(SelectionPolicy):
    """Prefer the member with the fewest ongoing executions.

    Ties break on advertised latency, then name (determinism)."""

    name = "least-loaded"

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        return sorted(
            candidates,
            key=lambda m: (
                history.current_load(m.service_name) / m.profile.capacity,
                m.profile.latency_mean_ms,
                m.service_name,
            ),
        )


class HistoryQualityPolicy(SelectionPolicy):
    """Prefer members with the best observed success rate, then speed."""

    name = "history-quality"

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        def key(member: MemberRecord) -> "tuple[float, float, str]":
            stats = history.stats(member.service_name)
            rate = stats.success_rate(prior=member.profile.reliability)
            duration = stats.mean_duration_ms(
                default=member.profile.latency_mean_ms
            )
            return (-rate, duration, member.service_name)

        return sorted(candidates, key=key)


class MultiAttributePolicy(SelectionPolicy):
    """Weighted additive utility over cost/latency/reliability/load."""

    name = "multi-attribute"

    def __init__(self, weights: Optional[AttributeWeights] = None) -> None:
        self.weights = weights or AttributeWeights()

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        scores = score_candidates(list(candidates), history, self.weights)
        return sorted(
            candidates,
            key=lambda m: (-scores[m.service_name], m.service_name),
        )


class HealthWeightedPolicy(SelectionPolicy):
    """Prefer healthy members, then the lowest observed EWMA latency.

    The health-weighted mode of selection: candidates are ordered by
    live status (UP before DEGRADED before DOWN) from the platform's
    :class:`~repro.resilience.HealthRegistry`, then by EWMA latency
    (falling back to the advertised profile latency while a member has
    no observations), then by name for determinism.  Without a bound
    registry it degrades to advertised-latency order — deployment binds
    the registry via :meth:`bind_health`.
    """

    name = "health-weighted"

    def __init__(self, health: Optional[Any] = None) -> None:
        #: A :class:`~repro.resilience.HealthRegistry` (kept as ``Any``
        #: to leave this module import-light).
        self.health = health

    def bind_health(self, health: Any) -> None:
        """Late-bind the platform's health registry (deploy-time hook)."""
        if self.health is None:
            self.health = health

    def rank(
        self,
        candidates: "List[MemberRecord]",
        request: SelectionRequest,
        history: ExecutionHistory,
    ) -> "List[MemberRecord]":
        health = self.health

        def key(member: MemberRecord) -> "tuple[int, float, str]":
            if health is None:
                return (0, member.profile.latency_mean_ms,
                        member.service_name)
            return (
                health.rank(member.service_name),
                health.ewma_ms(member.service_name,
                               default=member.profile.latency_mean_ms),
                member.service_name,
            )

        return sorted(candidates, key=key)


_POLICIES = {
    RandomPolicy.name: RandomPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    HistoryQualityPolicy.name: HistoryQualityPolicy,
    MultiAttributePolicy.name: MultiAttributePolicy,
    HealthWeightedPolicy.name: HealthWeightedPolicy,
}


def policy_by_name(name: str, **kwargs: Any) -> SelectionPolicy:
    """Instantiate a policy from its registry name.

    Used by deployment descriptors and the benchmark parameter sweeps.
    """
    cls = _POLICIES.get(name)
    if cls is None:
        raise CommunityError(
            f"unknown selection policy {name!r}; available: "
            f"{sorted(_POLICIES)}"
        )
    return cls(**kwargs)


def available_policies() -> "Dict[str, type]":
    return dict(_POLICIES)
