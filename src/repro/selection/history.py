"""Execution history: past outcomes and current load per member service."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple


@dataclass
class ServiceStats:
    """Aggregates over one member's observed executions."""

    successes: int = 0
    failures: int = 0
    durations_ms: Deque[float] = field(default_factory=lambda: deque(maxlen=256))
    ongoing: int = 0

    @property
    def attempts(self) -> int:
        return self.successes + self.failures

    def success_rate(self, prior: float = 1.0, prior_weight: int = 1) -> float:
        """Smoothed success rate.

        A Laplace-style prior keeps brand-new members from scoring 0/0 —
        they start at ``prior`` and converge to their true rate as
        observations accumulate.
        """
        return (self.successes + prior * prior_weight) / (
            self.attempts + prior_weight
        )

    def mean_duration_ms(self, default: float = 0.0) -> float:
        if not self.durations_ms:
            return default
        return sum(self.durations_ms) / len(self.durations_ms)


class ExecutionHistory:
    """Tracks outcomes and in-flight counts for a set of services.

    One instance is shared by a community wrapper and its selection
    policy; separate communities keep separate histories (members are
    judged per community, matching the paper's per-community delegation).
    """

    def __init__(self) -> None:
        self._stats: Dict[str, ServiceStats] = {}

    def stats(self, service: str) -> ServiceStats:
        found = self._stats.get(service)
        if found is None:
            found = ServiceStats()
            self._stats[service] = found
        return found

    def known_services(self) -> "Tuple[str, ...]":
        return tuple(self._stats.keys())

    # Recording ------------------------------------------------------------

    def record_start(self, service: str) -> None:
        """Note an invocation in flight (the 'ongoing executions' signal)."""
        self.stats(service).ongoing += 1

    def record_end(
        self, service: str, success: bool, duration_ms: float
    ) -> None:
        """Record the outcome of an invocation started earlier."""
        stats = self.stats(service)
        if stats.ongoing > 0:
            stats.ongoing -= 1
        if success:
            stats.successes += 1
        else:
            stats.failures += 1
        stats.durations_ms.append(duration_ms)

    # Queries ----------------------------------------------------------------

    def current_load(self, service: str) -> int:
        return self.stats(service).ongoing

    def success_rate(self, service: str) -> float:
        return self.stats(service).success_rate()

    def mean_duration_ms(self, service: str, default: float = 0.0) -> float:
        return self.stats(service).mean_duration_ms(default)

    def snapshot(self) -> "Dict[str, Dict[str, float]]":
        """Plain-dict view for reports and benchmarks."""
        return {
            service: {
                "successes": stats.successes,
                "failures": stats.failures,
                "ongoing": stats.ongoing,
                "success_rate": stats.success_rate(),
                "mean_duration_ms": stats.mean_duration_ms(),
            }
            for service, stats in self._stats.items()
        }
