"""Community member selection.

"At runtime, when a community receives a request for executing an
operation, it delegates it to one of its current members.  The choice of
the delegatee is based on the parameters of the request, the
characteristics of the members, the history of past executions and the
status of ongoing executions." (paper §2)

The four information sources map to:

* parameters of the request — :class:`SelectionRequest`,
* member characteristics — :class:`~repro.services.ServiceProfile`,
* history of past executions — :class:`ExecutionHistory`,
* status of ongoing executions — :meth:`ExecutionHistory.current_load`.

Policies return a *preference order* over candidates, not a single pick:
the community wrapper walks the order on failure, which is what gives the
platform its availability story (benchmark CLAIM-AVAIL).
"""

from repro.selection.history import ExecutionHistory, ServiceStats
from repro.selection.policies import (
    HistoryQualityPolicy,
    LeastLoadedPolicy,
    MultiAttributePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SelectionPolicy,
    SelectionRequest,
    policy_by_name,
)
from repro.selection.scoring import AttributeWeights, score_member

__all__ = [
    "AttributeWeights",
    "ExecutionHistory",
    "HistoryQualityPolicy",
    "LeastLoadedPolicy",
    "MultiAttributePolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SelectionPolicy",
    "SelectionRequest",
    "ServiceStats",
    "policy_by_name",
    "score_member",
]
