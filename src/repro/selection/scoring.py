"""Multi-attribute scoring of community members.

A simple additive utility over normalised attributes, in the spirit of the
quality-driven selection of the SELF-SERV line of work: each attribute is
normalised to [0, 1] across the candidate set (higher is better), then
combined with user-supplied weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.selection.history import ExecutionHistory
from repro.services.community import MemberRecord


@dataclass(frozen=True)
class AttributeWeights:
    """Relative importance of each selection attribute (>= 0 each).

    Attributes cover the paper's four signals: ``cost`` and ``latency``
    come from advertised member characteristics, ``reliability`` blends
    the advertised value with observed history, and ``load`` reads the
    status of ongoing executions.
    """

    cost: float = 1.0
    latency: float = 1.0
    reliability: float = 1.0
    load: float = 1.0

    def __post_init__(self) -> None:
        for name in ("cost", "latency", "reliability", "load"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name!r} must be >= 0")

    @property
    def total(self) -> float:
        return self.cost + self.latency + self.reliability + self.load


def _normalise_lower_better(values: "List[float]") -> "List[float]":
    """Map raw values to [0,1] where the smallest raw value scores 1."""
    low, high = min(values), max(values)
    if high == low:
        return [1.0] * len(values)
    return [(high - v) / (high - low) for v in values]


def score_member(
    member: MemberRecord,
    candidates: Sequence[MemberRecord],
    history: ExecutionHistory,
    weights: AttributeWeights,
) -> float:
    """Score one member against the candidate set; higher is better."""
    scores = score_candidates(list(candidates), history, weights)
    return scores[member.service_name]


def score_candidates(
    candidates: "List[MemberRecord]",
    history: ExecutionHistory,
    weights: AttributeWeights,
) -> "Dict[str, float]":
    """Score every candidate; returns service name -> utility in [0, 1]."""
    if not candidates:
        return {}
    costs = _normalise_lower_better([m.profile.cost for m in candidates])
    latencies = _normalise_lower_better([
        # Observed mean duration dominates once history exists; fall back
        # to the advertised latency for fresh members.
        history.mean_duration_ms(
            m.service_name, default=m.profile.latency_mean_ms
        )
        for m in candidates
    ])
    loads = _normalise_lower_better([
        history.current_load(m.service_name) / m.profile.capacity
        for m in candidates
    ])
    reliabilities = [
        # Blend: advertised reliability is the prior, history the evidence.
        0.5 * m.profile.reliability
        + 0.5 * history.stats(m.service_name).success_rate(
            prior=m.profile.reliability
        )
        for m in candidates
    ]

    total_weight = weights.total or 1.0
    result: Dict[str, float] = {}
    for index, member in enumerate(candidates):
        utility = (
            weights.cost * costs[index]
            + weights.latency * latencies[index]
            + weights.reliability * reliabilities[index]
            + weights.load * loads[index]
        ) / total_weight
        result[member.service_name] = utility
    return result
