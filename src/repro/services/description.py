"""WSDL-like typed service descriptions.

A :class:`ServiceDescription` is the provider-independent interface of a
service: its name, provider, documentation, and the set of operations with
typed input/output parameters.  The discovery engine publishes these and
the wrappers validate invocations against them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import OperationNotFoundError, ParameterError


class ParameterType(enum.Enum):
    """Wire types for operation parameters (XSD-flavoured subset)."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOLEAN = "boolean"
    RECORD = "record"  # nested mapping
    LIST = "list"
    ANY = "any"

    def accepts(self, value: Any) -> bool:
        """Check a Python value against this wire type."""
        if value is None:
            return True  # nullability is handled by Parameter.required
        if self is ParameterType.STRING:
            return isinstance(value, str)
        if self is ParameterType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ParameterType.FLOAT:
            return (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
            )
        if self is ParameterType.BOOLEAN:
            return isinstance(value, bool)
        if self is ParameterType.RECORD:
            return isinstance(value, Mapping)
        if self is ParameterType.LIST:
            return isinstance(value, (list, tuple))
        return True  # ANY


@dataclass(frozen=True)
class Parameter:
    """One input or output parameter of an operation."""

    name: str
    type: ParameterType = ParameterType.ANY
    required: bool = True
    description: str = ""

    def check(self, value: Any, operation: str, direction: str) -> None:
        """Validate ``value``; raise :class:`ParameterError` on mismatch."""
        if value is None:
            if self.required:
                raise ParameterError(
                    f"operation {operation!r}: required {direction} "
                    f"parameter {self.name!r} is missing"
                )
            return
        if not self.type.accepts(value):
            raise ParameterError(
                f"operation {operation!r}: {direction} parameter "
                f"{self.name!r} expects {self.type.value}, got "
                f"{type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True)
class OperationSpec:
    """Signature of one service operation."""

    name: str
    inputs: Tuple[Parameter, ...] = ()
    outputs: Tuple[Parameter, ...] = ()
    description: str = ""

    def input_names(self) -> "List[str]":
        return [p.name for p in self.inputs]

    def output_names(self) -> "List[str]":
        return [p.name for p in self.outputs]

    def validate_inputs(self, arguments: Mapping[str, Any]) -> "Dict[str, Any]":
        """Validate and normalise call arguments.

        Unknown argument names are rejected: silently dropping them hides
        wiring bugs between the statechart's input mappings and the
        operation signature.
        """
        known = {p.name for p in self.inputs}
        unknown = set(arguments) - known
        if unknown:
            raise ParameterError(
                f"operation {self.name!r}: unknown input parameter(s) "
                f"{sorted(unknown)!r}"
            )
        for parameter in self.inputs:
            parameter.check(arguments.get(parameter.name), self.name, "input")
        return {name: arguments.get(name) for name in known}

    def validate_outputs(self, results: Mapping[str, Any]) -> "Dict[str, Any]":
        """Validate a handler's result mapping against the output spec."""
        known = {p.name for p in self.outputs}
        unknown = set(results) - known
        if unknown:
            raise ParameterError(
                f"operation {self.name!r}: handler produced unknown "
                f"output(s) {sorted(unknown)!r}"
            )
        for parameter in self.outputs:
            parameter.check(results.get(parameter.name), self.name, "output")
        return {name: results.get(name) for name in known}


@dataclass
class ServiceDescription:
    """Provider-facing description of a service interface."""

    name: str
    provider: str = ""
    description: str = ""
    operations: Dict[str, OperationSpec] = field(default_factory=dict)

    def add_operation(self, spec: OperationSpec) -> OperationSpec:
        if spec.name in self.operations:
            raise ParameterError(
                f"service {self.name!r} already declares operation "
                f"{spec.name!r}"
            )
        self.operations[spec.name] = spec
        return spec

    def operation(self, name: str) -> OperationSpec:
        try:
            return self.operations[name]
        except KeyError:
            raise OperationNotFoundError(self.name, name) from None

    def has_operation(self, name: str) -> bool:
        return name in self.operations

    def operation_names(self) -> "List[str]":
        return list(self.operations.keys())


def simple_description(
    name: str,
    provider: str,
    operations: Iterable[Tuple[str, Iterable[str], Iterable[str]]],
    description: str = "",
) -> ServiceDescription:
    """Build a description with ANY-typed parameters from name tuples.

    Each operation is ``(op_name, input_names, output_names)``.  Used by
    tests and the synthetic workload generator where types don't matter.
    """
    desc = ServiceDescription(name=name, provider=provider,
                              description=description)
    for op_name, inputs, outputs in operations:
        desc.add_operation(OperationSpec(
            name=op_name,
            inputs=tuple(Parameter(i) for i in inputs),
            outputs=tuple(Parameter(o) for o in outputs),
        ))
    return desc
