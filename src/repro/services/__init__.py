"""Service model: elementary services, composite services, communities.

SELF-SERV distinguishes three service types (paper §2):

* :class:`ElementaryService` — an individual web-accessible application
  that does not rely on other web services,
* :class:`CompositeService` — an aggregation of component services whose
  operations are described by statecharts,
* :class:`ServiceCommunity` — a container of alternative services that
  delegates each request to one of its current members.

All three share a WSDL-like :class:`ServiceDescription` (typed operations
with input/output parameters) plus a QoS :class:`ServiceProfile` used by
community selection and by the simulated testbed.
"""

from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.profile import ServiceProfile
from repro.services.elementary import ElementaryService, operation_handler
from repro.services.composite import CompositeService
from repro.services.community import MemberRecord, ServiceCommunity

__all__ = [
    "CompositeService",
    "ElementaryService",
    "MemberRecord",
    "OperationSpec",
    "Parameter",
    "ParameterType",
    "ServiceCommunity",
    "ServiceDescription",
    "ServiceProfile",
    "operation_handler",
]
