"""Service communities: containers of alternative services.

A community describes a *desired* service (e.g. "accommodation booking")
without naming a provider.  Providers register as members; at runtime a
request to a community operation is delegated to one member chosen by a
selection policy (see :mod:`repro.selection`).  Members may be suspended
(temporarily out of rotation) or removed, matching the paper's "current
members" phrasing — membership is dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.exceptions import (
    CommunityError,
    ExpressionError,
    NoMemberAvailableError,
)
from repro.expr import CompiledExpression, FunctionRegistry
from repro.services.description import ServiceDescription
from repro.services.profile import ServiceProfile


@dataclass
class MemberRecord:
    """One member of a community.

    ``operation_mapping`` translates community operation names to the
    member's own operation names when they differ (empty mapping means the
    member uses the community's names verbatim).

    ``constraint`` is an optional guard expression over the *request
    arguments* declaring which requests this member can serve (e.g. an
    accommodation provider covering only ``domestic(destination)``).
    This is the "parameters of the request" input to delegation from
    paper §2: members whose constraint evaluates false are excluded from
    the candidate set before any policy ranks them.
    """

    service_name: str
    profile: ServiceProfile = field(default_factory=ServiceProfile)
    operation_mapping: Dict[str, str] = field(default_factory=dict)
    active: bool = True
    constraint: str = ""
    _compiled_constraint: Optional[CompiledExpression] = field(
        default=None, repr=False, compare=False,
    )

    def member_operation(self, community_operation: str) -> str:
        return self.operation_mapping.get(
            community_operation, community_operation
        )

    def serves(
        self,
        arguments: Mapping[str, Any],
        registry: Optional[FunctionRegistry] = None,
    ) -> bool:
        """True when this member's constraint admits ``arguments``.

        An unparsable constraint or an evaluation error (e.g. the request
        lacks a variable the constraint needs) counts as *not serving* —
        a member must not win requests its own declaration can't judge.
        """
        text = self.constraint.strip()
        if not text:
            return True
        try:
            if self._compiled_constraint is None:
                object.__setattr__(
                    self, "_compiled_constraint",
                    CompiledExpression(text, registry),
                )
            return self._compiled_constraint(dict(arguments))
        except ExpressionError:
            return False


class ServiceCommunity:
    """A community: a description plus dynamic membership."""

    def __init__(self, description: ServiceDescription) -> None:
        self.description = description
        self._members: Dict[str, MemberRecord] = {}
        #: Monotonic membership mutation counter (join/leave/suspend/
        #: resume) — the community-side half of the discovery cache's
        #: generation invalidation.
        self.membership_generation = 0
        self._membership_listeners: "List[Callable[[], None]]" = []

    # Membership-change observation ----------------------------------------

    def add_membership_listener(
        self, callback: "Callable[[], None]"
    ) -> None:
        """Call ``callback`` after every membership mutation.

        The platform hooks the discovery engine's locate-cache
        invalidation here: membership churn does not pass through the
        UDDI registry, so without this signal a cached community binding
        could outlive the membership it was resolved under.
        """
        self._membership_listeners.append(callback)

    def remove_membership_listener(
        self, callback: "Callable[[], None]"
    ) -> None:
        self._membership_listeners.remove(callback)

    def _membership_changed(self) -> None:
        self.membership_generation += 1
        for callback in list(self._membership_listeners):
            callback()

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def provider(self) -> str:
        return self.description.provider

    # Membership management -----------------------------------------------

    def join(
        self,
        service_name: str,
        profile: Optional[ServiceProfile] = None,
        operation_mapping: Optional[Mapping[str, str]] = None,
        constraint: str = "",
    ) -> MemberRecord:
        """Register ``service_name`` as a member.

        ``constraint`` is an optional request-argument guard (see
        :class:`MemberRecord`); it must parse, so a typo surfaces at join
        time rather than silently excluding the member forever.
        """
        if service_name in self._members:
            raise CommunityError(
                f"service {service_name!r} is already a member of "
                f"community {self.name!r}"
            )
        unknown_ops = [
            op for op in (operation_mapping or {})
            if not self.description.has_operation(op)
        ]
        if unknown_ops:
            raise CommunityError(
                f"community {self.name!r} does not declare operation(s) "
                f"{sorted(unknown_ops)!r} referenced by member mapping"
            )
        if constraint.strip():
            from repro.expr import parse

            try:
                parse(constraint)
            except ExpressionError as exc:
                raise CommunityError(
                    f"member {service_name!r}: bad constraint "
                    f"{constraint!r}: {exc}"
                ) from exc
        record = MemberRecord(
            service_name=service_name,
            profile=profile or ServiceProfile(),
            operation_mapping=dict(operation_mapping or {}),
            constraint=constraint,
        )
        self._members[service_name] = record
        self._membership_changed()
        return record

    def leave(self, service_name: str) -> None:
        """Remove a member entirely."""
        if service_name not in self._members:
            raise CommunityError(
                f"service {service_name!r} is not a member of community "
                f"{self.name!r}"
            )
        del self._members[service_name]
        self._membership_changed()

    def suspend(self, service_name: str) -> None:
        """Take a member out of rotation without removing it."""
        self._record(service_name).active = False
        self._membership_changed()

    def resume(self, service_name: str) -> None:
        """Return a suspended member to rotation."""
        self._record(service_name).active = True
        self._membership_changed()

    def _record(self, service_name: str) -> MemberRecord:
        record = self._members.get(service_name)
        if record is None:
            raise CommunityError(
                f"service {service_name!r} is not a member of community "
                f"{self.name!r}"
            )
        return record

    # Queries ---------------------------------------------------------------

    def members(self, include_inactive: bool = False) -> "List[MemberRecord]":
        """Current members, active ones only by default."""
        return [
            m for m in self._members.values()
            if include_inactive or m.active
        ]

    def member(self, service_name: str) -> MemberRecord:
        return self._record(service_name)

    def is_member(self, service_name: str) -> bool:
        return service_name in self._members

    def candidates(
        self,
        operation: str,
        arguments: Optional[Mapping[str, Any]] = None,
        registry: Optional[FunctionRegistry] = None,
    ) -> "List[MemberRecord]":
        """Active members able to serve ``operation`` for ``arguments``.

        With ``arguments`` given, members whose request constraint
        rejects them are filtered out (paper §2: the choice of delegatee
        considers "the parameters of the request").  Raises
        :class:`NoMemberAvailableError` when empty — the runtime turns
        this into a community-level invocation failure.
        """
        if not self.description.has_operation(operation):
            raise CommunityError(
                f"community {self.name!r} does not declare operation "
                f"{operation!r}"
            )
        found = [m for m in self._members.values() if m.active]
        if arguments is not None:
            found = [m for m in found if m.serves(arguments, registry)]
        if not found:
            raise NoMemberAvailableError(self.name, operation)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServiceCommunity({self.name!r}, members="
            f"{sorted(self._members)!r})"
        )
