"""Elementary services: individual web-accessible applications.

An elementary service couples a :class:`ServiceDescription` with Python
handlers, one per operation.  Handlers receive the validated input mapping
and return an output mapping; the service validates both directions so a
wiring mistake surfaces at the call site rather than three states later in
a composite execution.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Mapping, Optional

from repro.exceptions import InvocationError, OperationNotFoundError
from repro.services.description import OperationSpec, ServiceDescription
from repro.services.profile import ServiceProfile

OperationHandler = Callable[[Mapping[str, Any]], Mapping[str, Any]]


def operation_handler(
    func: Callable[..., Mapping[str, Any]]
) -> OperationHandler:
    """Adapt a keyword-argument function into an operation handler.

    ``@operation_handler`` lets providers write natural signatures::

        @operation_handler
        def book(customer, departure_date, return_date):
            return {"booking_ref": ...}
    """

    @functools.wraps(func)
    def wrapper(inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        return func(**dict(inputs))

    return wrapper


class ElementaryService:
    """A leaf service: description + handlers + QoS profile."""

    def __init__(
        self,
        description: ServiceDescription,
        profile: Optional[ServiceProfile] = None,
    ) -> None:
        self.description = description
        self.profile = profile or ServiceProfile()
        self._handlers: Dict[str, OperationHandler] = {}
        self.invocation_count = 0

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def provider(self) -> str:
        return self.description.provider

    def bind(self, operation: str, handler: OperationHandler) -> None:
        """Attach ``handler`` to the named operation.

        The operation must exist in the description — binding an undeclared
        operation would create an interface the registry never advertised.
        """
        self.description.operation(operation)  # raises if undeclared
        self._handlers[operation] = handler

    def handler_for(self, operation: str) -> OperationHandler:
        spec = self.description.operation(operation)
        handler = self._handlers.get(spec.name)
        if handler is None:
            raise InvocationError(
                f"service {self.name!r}: operation {operation!r} is "
                f"declared but has no handler bound"
            )
        return handler

    def invoke(
        self, operation: str, arguments: Mapping[str, Any]
    ) -> "Dict[str, Any]":
        """Invoke ``operation`` locally, validating inputs and outputs."""
        spec: OperationSpec = self.description.operation(operation)
        handler = self.handler_for(operation)
        inputs = spec.validate_inputs(arguments)
        self.invocation_count += 1
        try:
            results = handler(inputs)
        except InvocationError:
            raise
        except Exception as exc:
            raise InvocationError(
                f"service {self.name!r} operation {operation!r} failed: "
                f"{exc}"
            ) from exc
        if results is None:
            results = {}
        if not isinstance(results, Mapping):
            raise InvocationError(
                f"service {self.name!r} operation {operation!r} returned "
                f"{type(results).__name__}, expected a mapping"
            )
        return spec.validate_outputs(results)

    def supports(self, operation: str) -> bool:
        """True when the operation is declared *and* has a handler."""
        try:
            self.handler_for(operation)
        except (OperationNotFoundError, InvocationError):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ops = ", ".join(self.description.operation_names())
        return f"ElementaryService({self.name!r}, operations=[{ops}])"
