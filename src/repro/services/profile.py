"""QoS profiles for services.

Communities pick a delegatee based on "the parameters of the request, the
characteristics of the members, the history of past executions and the
status of ongoing executions" (paper §2).  The static *characteristics*
live here; execution history and load are tracked by
:mod:`repro.selection.history`.

The same profile drives the simulated testbed: the network substrate uses
``latency_mean_ms``/``latency_jitter_ms`` to model service work time and
``reliability`` to inject failures deterministically from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServiceProfile:
    """Advertised characteristics of a service instance.

    * ``latency_mean_ms`` — mean execution time of an operation,
    * ``latency_jitter_ms`` — half-width of the uniform jitter window,
    * ``reliability`` — probability an invocation succeeds (0..1],
    * ``cost`` — monetary cost per invocation (abstract units),
    * ``capacity`` — max concurrent executions the provider handles before
      response time degrades (used by load-aware selection).
    """

    latency_mean_ms: float = 10.0
    latency_jitter_ms: float = 0.0
    reliability: float = 1.0
    cost: float = 1.0
    capacity: int = 8

    def __post_init__(self) -> None:
        if self.latency_mean_ms < 0:
            raise ValueError("latency_mean_ms must be >= 0")
        if self.latency_jitter_ms < 0:
            raise ValueError("latency_jitter_ms must be >= 0")
        if not (0.0 < self.reliability <= 1.0):
            raise ValueError("reliability must be in (0, 1]")
        if self.cost < 0:
            raise ValueError("cost must be >= 0")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def sample_latency_ms(self, rng: Optional[random.Random] = None) -> float:
        """Draw one execution time from the profile's jitter window."""
        if self.latency_jitter_ms == 0:
            return self.latency_mean_ms
        rng = rng or random
        low = max(0.0, self.latency_mean_ms - self.latency_jitter_ms)
        high = self.latency_mean_ms + self.latency_jitter_ms
        return rng.uniform(low, high)

    def sample_success(self, rng: Optional[random.Random] = None) -> bool:
        """Draw one success/failure outcome from ``reliability``."""
        if self.reliability >= 1.0:
            return True
        rng = rng or random
        return rng.random() < self.reliability
