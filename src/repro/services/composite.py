"""Composite services: statechart-described aggregations of components."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import OperationNotFoundError, ServiceError
from repro.services.description import OperationSpec, ServiceDescription
from repro.statecharts.model import Statechart
from repro.statecharts.validation import validate


class CompositeService:
    """A composite service.

    Per the paper, each *operation* of a composite service is glued
    together by a statechart; most composites (including the travel demo)
    expose a single operation, but the model allows several.
    """

    def __init__(self, description: ServiceDescription) -> None:
        self.description = description
        self._charts: Dict[str, Statechart] = {}

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def provider(self) -> str:
        return self.description.provider

    def define_operation(
        self,
        spec: OperationSpec,
        chart: Statechart,
        validate_chart: bool = True,
    ) -> None:
        """Declare an operation and attach its statechart."""
        if spec.name in self._charts:
            raise ServiceError(
                f"composite {self.name!r} already defines operation "
                f"{spec.name!r}"
            )
        if validate_chart:
            validate(chart)
        if not self.description.has_operation(spec.name):
            self.description.add_operation(spec)
        self._charts[spec.name] = chart

    def chart_for(self, operation: str) -> Statechart:
        chart = self._charts.get(operation)
        if chart is None:
            raise OperationNotFoundError(self.name, operation)
        return chart

    def operations(self) -> "List[str]":
        return list(self._charts.keys())

    def component_services(self) -> "List[str]":
        """Names of every component service referenced by any operation."""
        names: List[str] = []
        seen = set()
        for chart in self._charts.values():
            for service in chart.service_names():
                if service not in seen:
                    seen.add(service)
                    names.append(service)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompositeService({self.name!r}, "
            f"operations={self.operations()!r})"
        )
