"""Execution tracing via transport observation.

The tracer is deliberately *passive*: it reads the same protocol
messages the coordinators exchange (notify/invoke/complete/…), so
attaching it changes nothing about execution — the monitoring analogue
of a network tap on the original platform's sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.actor import subscribe_deliveries
from repro.net.message import Message
from repro.net.transport import Transport
from repro.perf.events import PerfEvent, PerfEventLog
from repro.resilience.events import ResilienceEvent, ResilienceEventLog
from repro.runtime.protocol import MessageKinds


@dataclass(frozen=True)
class TraceEvent:
    """One observed coordination step of an execution."""

    time_ms: float
    kind: str
    source: str          # node (host) the message came from
    target: str          # node (host) it was delivered to
    detail: str = ""     # flat-node / service / event name


@dataclass
class ExecutionTimeline:
    """Everything observed about one execution."""

    execution_id: str
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def started_ms(self) -> float:
        return self.events[0].time_ms if self.events else 0.0

    @property
    def finished_ms(self) -> float:
        return self.events[-1].time_ms if self.events else 0.0

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms

    def states_fired(self) -> "List[str]":
        """Flat-node ids in notification order (the path taken)."""
        seen: List[str] = []
        for event in self.events:
            if event.kind == MessageKinds.NOTIFY and event.detail:
                if event.detail not in seen:
                    seen.append(event.detail)
        return seen

    def services_invoked(self) -> "List[str]":
        """Service operations invoked, in order, with repeats."""
        return [
            event.detail for event in self.events
            if event.kind == MessageKinds.INVOKE
        ]

    def signals_seen(self) -> "List[str]":
        return [
            event.detail for event in self.events
            if event.kind == MessageKinds.SIGNAL
        ]

    def hosts_touched(self) -> "List[str]":
        hosts: List[str] = []
        for event in self.events:
            for host in (event.source, event.target):
                if host not in hosts:
                    hosts.append(host)
        return hosts

    @property
    def outcome(self) -> str:
        """'success', 'fault', 'timeout' or 'running'."""
        for event in reversed(self.events):
            if event.kind == MessageKinds.EXECUTE_RESULT:
                return event.detail or "unknown"
        return "running"

    def render(self) -> str:
        """Human-readable timeline (the monitoring console view)."""
        lines = [f"execution {self.execution_id} "
                 f"({self.outcome}, {self.duration_ms:.1f} ms)"]
        base = self.started_ms
        for event in self.events:
            offset = event.time_ms - base
            lines.append(
                f"  +{offset:8.2f}ms  {event.kind:<15} "
                f"{event.source} -> {event.target}"
                + (f"  [{event.detail}]" if event.detail else "")
            )
        return "\n".join(lines)


def _detail_of(message: Message) -> str:
    body = message.body
    if message.kind == MessageKinds.NOTIFY:
        return str(body.get("from_node", ""))
    if message.kind == MessageKinds.INVOKE:
        return str(body.get("operation", ""))
    if message.kind == MessageKinds.SIGNAL:
        return str(body.get("event", ""))
    if message.kind == MessageKinds.COMPLETE:
        return str(body.get("final_node", ""))
    if message.kind == MessageKinds.EXECUTION_FAULT:
        return str(body.get("reason", ""))[:80]
    if message.kind == MessageKinds.EXECUTE_RESULT:
        return str(body.get("status", ""))
    return ""


class ExecutionTracer:
    """Observes a transport and maintains per-execution timelines."""

    #: Message kinds that participate in execution timelines.
    TRACED_KINDS = frozenset({
        MessageKinds.NOTIFY,
        MessageKinds.INVOKE,
        MessageKinds.INVOKE_RESULT,
        MessageKinds.COMPLETE,
        MessageKinds.EXECUTION_FAULT,
        MessageKinds.EXECUTE_RESULT,
        MessageKinds.SIGNAL,
    })

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self._timelines: Dict[str, ExecutionTimeline] = {}
        self._attached = False
        self._detach: "Callable[[], None]" = lambda: None
        #: The platform's resilience event log (retry, hedge_fired,
        #: breaker_open, failover, ...), attached by the platform when
        #: resilience is enabled — the monitoring console shows these
        #: next to the per-execution message timelines.
        self.resilience: Optional[ResilienceEventLog] = None
        #: The platform's perf event log (cache_hit, cache_miss,
        #: cache_invalidate, ...), attached by the platform — the fast
        #: path's audit trail, read through :meth:`perf_events`.
        self.perf: Optional[PerfEventLog] = None

    def attach(self, via: Optional[object] = None) -> "ExecutionTracer":
        """Start observing deliveries.

        ``via`` is an :class:`~repro.kernel.ActorKernel`: the tracer
        then rides the kernel's delivery-tap chain (one shared transport
        observer for all passive subsystems) instead of attaching its
        own observer.  Without it, the standalone transport-observer
        path is used, as in v1.
        """
        if not self._attached:
            self._detach = subscribe_deliveries(
                via if via is not None else self.transport, self._observe
            )
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self._detach()
            self._attached = False

    def __enter__(self) -> "ExecutionTracer":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def _observe(self, message: Message, time_ms: float) -> None:
        if message.kind not in self.TRACED_KINDS:
            return
        execution_id = message.body.get("execution_id", "")
        if not execution_id:
            return
        timeline = self._timelines.get(execution_id)
        if timeline is None:
            timeline = ExecutionTimeline(execution_id=execution_id)
            self._timelines[execution_id] = timeline
        timeline.events.append(TraceEvent(
            time_ms=time_ms,
            kind=message.kind,
            source=message.source,
            target=message.target,
            detail=_detail_of(message),
        ))

    # Queries ----------------------------------------------------------------

    def timeline(self, execution_id: str) -> Optional[ExecutionTimeline]:
        return self._timelines.get(execution_id)

    def timelines(self) -> "List[ExecutionTimeline]":
        return list(self._timelines.values())

    def running(self) -> "List[ExecutionTimeline]":
        return [t for t in self._timelines.values()
                if t.outcome == "running"]

    def resilience_events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> "List[ResilienceEvent]":
        """Recorded resilience decisions (``[]`` without resilience)."""
        if self.resilience is None:
            return []
        return self.resilience.events(kind=kind, subject=subject)

    def perf_events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> "List[PerfEvent]":
        """Recorded fast-path decisions (``[]`` without a perf log)."""
        if self.perf is None:
            return []
        return self.perf.events(kind=kind, subject=subject)

    def batching(self) -> "Dict[str, float]":
        """The transport's delivery-batching numbers, as monitoring sees
        them: flush count, batched message count and mean messages per
        flush (all zero when batching is off)."""
        stats = self.transport.stats
        return {
            "batch_flushes": stats.batch_flushes,
            "batched_messages": stats.batched_messages,
            "batch_efficiency": stats.batch_efficiency(),
        }

    def clear(self) -> None:
        self._timelines.clear()
