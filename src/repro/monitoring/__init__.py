"""Execution monitoring.

"Coordinators ... are in charge of initiating, controlling, monitoring
the associated state" (paper §2).  This package provides the platform's
monitoring view: an :class:`ExecutionTracer` observes the transport and
reconstructs, per execution, the timeline of coordination events — which
states fired, which services were invoked where and for how long, which
events were signalled — without touching the runtime's hot path.  The
tracer also surfaces the platform's decision logs: resilience events
(``tracer.resilience_events()``), fast-path cache events
(``tracer.perf_events()``) and delivery-batching counters
(``tracer.batching()``).
"""

from repro.monitoring.tracer import (
    ExecutionTracer,
    ExecutionTimeline,
    TraceEvent,
)

__all__ = ["ExecutionTimeline", "ExecutionTracer", "TraceEvent"]
