"""Ablation of the precomputed routing tables.

The paper's claim: because routing tables are statically extracted,
"the coordinators do not need to implement any complex scheduling
algorithm".  The ablation quantifies what a coordinator *would* do
without the tables: on every notification it would have to re-derive its
firing decision from the raw statechart — re-flattening (or at least
re-walking) the chart to find its incoming edges, synchronisation
obligations and successor guards.

:func:`naive_decision_cost` performs exactly that derivation for one
node and returns the work done (nodes visited), so the CLAIM-TABLES
benchmark can plot per-event work: table lookup (O(row count), flat) vs
naive re-derivation (grows with chart size).

:class:`NaiveTableCache` is the honest middle ground — re-derive once,
memoise — used to show that memoisation merely re-creates the routing
table at runtime, i.e. the paper's static extraction is the same work
shifted to deployment time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.routing.generation import generate_routing_tables
from repro.routing.tables import RoutingTable
from repro.statecharts.flatten import FlatGraph, flatten
from repro.statecharts.model import Statechart


@dataclass
class DecisionCost:
    """Work accounting for one naive firing decision."""

    nodes_visited: int
    edges_examined: int

    @property
    def total(self) -> int:
        return self.nodes_visited + self.edges_examined


def naive_decision_cost(chart: Statechart, node_id: str) -> DecisionCost:
    """Derive one coordinator's firing knowledge from scratch.

    Mirrors what a table-less coordinator must do per notification:

    1. flatten the hierarchical chart (it only holds the raw XML),
    2. walk the flat graph to find its own node,
    3. collect incoming edges (precondition) and outgoing edges with
       guards (postprocessing).

    Returns the work performed.  Raises ``StatechartError`` if ``node_id``
    does not exist in the flattened chart (via ``graph.node``).
    """
    graph = flatten(chart)
    graph.node(node_id)  # validate existence, as the naive walk would
    nodes_visited = len(graph.nodes)
    edges_examined = len(graph.incoming(node_id)) + len(
        graph.outgoing(node_id)
    )
    # The flattening itself visits every node and edge once.
    edges_examined += len(graph.edges)
    return DecisionCost(nodes_visited=nodes_visited,
                        edges_examined=edges_examined)


class NaiveTableCache:
    """Re-derive-then-memoise: the runtime equivalent of static tables."""

    def __init__(self, chart: Statechart) -> None:
        self._chart = chart
        self._graph: "FlatGraph | None" = None
        self._tables: "Dict[str, RoutingTable] | None" = None
        self.derivations = 0

    def table_for(self, node_id: str) -> RoutingTable:
        """First call pays the full derivation; later calls are lookups."""
        if self._tables is None:
            self._graph = flatten(self._chart)
            self._tables = generate_routing_tables(self._graph)
            self.derivations += 1
        return self._tables[node_id]

    def lookup_cost(self, node_id: str) -> "Tuple[int, int]":
        """(precondition entries, postprocessing rows) — the table-driven
        per-event work, for the benchmark's flat line."""
        table = self.table_for(node_id)
        return (
            len(table.precondition.entries),
            len(table.postprocessing.rows),
        )
