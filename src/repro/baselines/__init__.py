"""Baselines the paper argues against.

* :class:`CentralOrchestrator` — a single scheduler that interprets the
  composite's statechart on one host, invoking every component remotely.
  This is the "centralised coordination" architecture whose scalability
  and availability problems motivate SELF-SERV's P2P model (paper §1);
  benchmarks CLAIM-P2P-MSG / CLAIM-SCALE / CLAIM-AVAIL compare it against
  the coordinator runtime.
* :class:`NaiveCoordinator` support (ablation): a coordinator variant that
  re-derives its firing decisions from the whole statechart at runtime
  instead of a precomputed routing table (CLAIM-TABLES ablation).
"""

from repro.baselines.central import CentralDeployment, CentralOrchestrator
from repro.baselines.naive import NaiveTableCache, naive_decision_cost

__all__ = [
    "CentralDeployment",
    "CentralOrchestrator",
    "NaiveTableCache",
    "naive_decision_cost",
]
