"""Centralised orchestration baseline.

One orchestrator process, on one host, interprets the whole statechart:
it keeps all control state, evaluates all guards, and performs every
service invocation itself.  Component services (and communities) are the
same wrappers the P2P runtime uses — only the coordination layer differs,
which makes message-count and latency comparisons apples-to-apples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import DeploymentError
from repro.expr import CompiledExpression, FunctionRegistry
from repro.kernel.actor import Actor, ActorKernel, handles
from repro.kernel.envelopes import (
    Execute,
    ExecuteAck,
    ExecuteResult,
    Invoke,
    InvokeResult,
    Signal,
)
from repro.net.message import Message
from repro.net.transport import Transport
from repro.routing.tables import FiringMode
from repro.routing.generation import generate_routing_tables
from repro.routing.tables import RoutingTable
from repro.runtime.directory import ServiceDirectory
from repro.runtime.protocol import central_endpoint
from repro.services.composite import CompositeService
from repro.statecharts.flatten import FlatGraph, NodeKind, flatten
from repro.statecharts.validation import validate

_invocation_ids = itertools.count(1)


@dataclass
class _CentralExecution:
    """All control state of one execution, held centrally."""

    execution_id: str
    operation: str
    env: Dict[str, Any]
    client_node: str
    client_endpoint: str
    edge_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Tokens parked on ECA events: (node_id, env snapshot) pairs.
    waiting_tokens: List[Tuple[str, Dict[str, Any]]] = field(
        default_factory=list
    )
    # Events that arrived before their consumer parked.
    buffered_signals: List[Tuple[str, Dict[str, Any]]] = field(
        default_factory=list
    )
    status: str = "running"
    started_ms: float = 0.0
    finished_ms: float = 0.0
    cancel_deadline: Optional[Callable[[], None]] = None
    request_key: str = ""


class CentralOrchestrator(Actor):
    """A classic central workflow engine over the same service pool.

    It reuses the routing-table *data* (generated from the same flattened
    graph) purely as its internal representation — the difference from the
    P2P runtime is architectural: every decision and every message goes
    through this one host.  It runs on the same kernel actor substrate
    as the P2P participants, so message-count comparisons measure the
    coordination model, not the plumbing.
    """

    def __init__(
        self,
        composite: CompositeService,
        host: str,
        transport: Transport,
        directory: ServiceDirectory,
        registry: Optional[FunctionRegistry] = None,
        default_timeout_ms: Optional[float] = None,
        validate_charts: bool = True,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        super().__init__(host, transport, kernel)
        self.composite = composite
        self.directory = directory
        self.default_timeout_ms = default_timeout_ms
        self._registry = registry
        self._graphs: Dict[str, FlatGraph] = {}
        self._tables: Dict[str, Dict[str, RoutingTable]] = {}
        self._guards: Dict[Tuple[str, str], Optional[CompiledExpression]] = {}
        self._actions: Dict[
            Tuple[str, str], Tuple[Tuple[str, CompiledExpression], ...]
        ] = {}
        self._inputs: Dict[
            Tuple[str, str], Dict[str, CompiledExpression]
        ] = {}
        self._executions: Dict[str, _CentralExecution] = {}
        self._pending: Dict[str, Tuple[str, str, str]] = {}
        self._pending_envs: Dict[str, Dict[str, Any]] = {}
        self._counter = itertools.count(1)

        for operation in composite.operations():
            chart = composite.chart_for(operation)
            if validate_charts:
                validate(chart)
            graph = flatten(chart)
            self._graphs[operation] = graph
            tables = generate_routing_tables(graph)
            self._tables[operation] = tables
            self._compile(operation, tables)

    def _compile(
        self, operation: str, tables: "Dict[str, RoutingTable]"
    ) -> None:
        for node_id, table in tables.items():
            for row in table.postprocessing.rows:
                key = (operation, row.edge_id)
                if row.fire_always or row.guard.strip() in ("", "true"):
                    self._guards[key] = None
                else:
                    self._guards[key] = CompiledExpression(
                        row.guard, self._registry
                    )
                self._actions[key] = tuple(
                    (a.target, CompiledExpression(a.expression, self._registry))
                    for a in row.actions
                )
            if table.binding is not None:
                self._inputs[(operation, node_id)] = {
                    parameter: CompiledExpression(expr, self._registry)
                    for parameter, expr in
                    table.binding.input_mapping.items()
                }

    # Wiring ------------------------------------------------------------------

    @property
    def endpoint_name(self) -> str:
        return central_endpoint(self.composite.name)

    @property
    def address(self) -> "Tuple[str, str]":
        return self.host, self.endpoint_name

    # Message handling -----------------------------------------------------------

    @handles(Execute)
    def _on_execute(self, execute: Execute, message: Message) -> None:
        operation = execute.operation
        client_node, client_endpoint = message.reply_address()
        execution_id = (
            f"{self.composite.name}:{operation}:c{next(self._counter)}"
        )
        execution = _CentralExecution(
            execution_id=execution_id,
            operation=operation,
            env=dict(execute.arguments),
            client_node=client_node,
            client_endpoint=client_endpoint,
            started_ms=self.transport.now_ms(),
            request_key=execute.request_key,
        )
        self._executions[execution_id] = execution
        self.send(client_node, client_endpoint, ExecuteAck(
            execution_id=execution_id,
            request_key=execute.request_key,
        ))
        graph = self._graphs.get(operation)
        if graph is None:
            self._finish(execution, "fault",
                         fault=f"no operation {operation!r}")
            return
        timeout_ms = (
            execute.timeout_ms if execute.timeout_ms is not None
            else self.default_timeout_ms
        )
        if timeout_ms is not None:
            execution.cancel_deadline = self.transport.schedule(
                self.host, float(timeout_ms),
                lambda: self._on_deadline(execution_id),
            )
        self._enter_node(execution, graph.initial_node().node_id,
                         dict(execution.env))

    def _enter_node(
        self,
        execution: _CentralExecution,
        node_id: str,
        env: "Dict[str, Any]",
        via_edge: Optional[str] = None,
    ) -> None:
        if execution.status != "running":
            return
        operation = execution.operation
        table = self._tables[operation][node_id]
        execution.env.update(env)

        if table.precondition.mode is FiringMode.ALL and via_edge is not None:
            counts = execution.edge_counts.setdefault(node_id, {})
            counts[via_edge] = counts.get(via_edge, 0) + 1
            expected = [e.edge_id for e in table.precondition.entries]
            if not all(counts.get(e, 0) >= 1 for e in expected):
                return
            for e in expected:
                counts[e] -= 1
            env = dict(execution.env)

        if table.kind is NodeKind.TASK:
            self._invoke(execution, node_id, env)
        elif table.kind is NodeKind.FINAL:
            self._finish(execution, "success", outputs=env)
        else:
            self._postprocess(execution, node_id, env)

    def _invoke(
        self,
        execution: _CentralExecution,
        node_id: str,
        env: "Dict[str, Any]",
    ) -> None:
        table = self._tables[execution.operation][node_id]
        binding = table.binding
        assert binding is not None
        try:
            arguments = {
                parameter: compiled.value(env)
                for parameter, compiled in
                self._inputs[(execution.operation, node_id)].items()
            }
            target_node, target_endpoint = self.directory.resolve(
                binding.service
            )
        except Exception as exc:  # expression or resolution failure
            self._finish(execution, "fault", fault=str(exc))
            return
        invocation_id = f"central-{next(_invocation_ids)}"
        self._pending[invocation_id] = (
            execution.execution_id, node_id, binding.service
        )
        # The central engine snapshots the env per invocation, like the
        # P2P coordinators do per token.
        self._pending_envs[invocation_id] = env
        self.send(target_node, target_endpoint, Invoke(
            invocation_id=invocation_id,
            execution_id=execution.execution_id,
            operation=binding.operation,
            arguments=arguments,
        ))

    @handles(InvokeResult)
    def _on_invoke_result(
        self, result: InvokeResult, message: Message
    ) -> None:
        invocation_id = result.invocation_id
        pending = self._pending.pop(invocation_id, None)
        env = self._pending_envs.pop(invocation_id, None)
        if pending is None or env is None:
            return
        execution_id, node_id, service = pending
        execution = self._executions.get(execution_id)
        if execution is None or execution.status != "running":
            return
        if not result.ok:
            self._finish(
                execution, "fault",
                fault=f"invocation of {service!r} at {node_id!r} failed: "
                      f"{result.fault or 'unknown fault'}",
            )
            return
        table = self._tables[execution.operation][node_id]
        binding = table.binding
        assert binding is not None
        outputs = result.outputs
        for variable, parameter in binding.output_mapping.items():
            env[variable] = outputs.get(parameter)
        self._postprocess(execution, node_id, env)

    def _postprocess(
        self,
        execution: _CentralExecution,
        node_id: str,
        env: "Dict[str, Any]",
    ) -> None:
        operation = execution.operation
        table = self._tables[operation][node_id]
        immediate = [r for r in table.postprocessing.rows if not r.event]
        event_rows = [r for r in table.postprocessing.rows if r.event]
        fired = 0
        for row in immediate:
            key = (operation, row.edge_id)
            compiled = self._guards[key]
            try:
                if not (row.fire_always or compiled is None or compiled(env)):
                    continue
                out_env = env
                actions = self._actions[key]
                if actions:
                    out_env = dict(env)
                    for target, expr in actions:
                        out_env[target] = expr.value(env)
            except Exception as exc:
                self._finish(execution, "fault",
                             fault=f"routing at {node_id!r}: {exc}")
                return
            fired += 1
            self._enter_node(execution, row.target_node, dict(out_env),
                             via_edge=row.edge_id)
            self._emit_events(execution, row)
        if fired == 0 and event_rows:
            # Park the token until a matching ECA event is signalled —
            # mirrors the P2P coordinator's semantics (incl. replaying
            # events that arrived early).
            execution.waiting_tokens.append((node_id, dict(env)))
            self._replay_buffered(execution)
            return
        if fired == 0 and table.postprocessing.rows:
            self._finish(execution, "fault",
                         fault=f"no routing guard matched at {node_id!r}")

    def _emit_events(
        self, execution: _CentralExecution, row
    ) -> None:
        """Produced events: handled internally (everything is central)."""
        for event in row.emits:
            self._handle_event(execution, event, {})

    @handles(Signal)
    def _on_signal(self, signal: Signal, message: Message) -> None:
        execution = self._executions.get(signal.execution_id)
        if execution is None or execution.status != "running":
            return
        self._handle_event(execution, signal.event, dict(signal.payload))

    def _handle_event(
        self,
        execution: _CentralExecution,
        event: str,
        payload: "Dict[str, Any]",
    ) -> None:
        if not self._try_consume(execution, event, payload):
            execution.buffered_signals.append((event, payload))

    def _replay_buffered(self, execution: _CentralExecution) -> None:
        buffered = list(execution.buffered_signals)
        execution.buffered_signals = []
        for event, payload in buffered:
            if not self._try_consume(execution, event, payload):
                execution.buffered_signals.append((event, payload))

    def _try_consume(
        self,
        execution: _CentralExecution,
        event: str,
        payload: "Dict[str, Any]",
    ) -> bool:
        operation = execution.operation
        # _enter_node may recursively park *new* tokens on this same
        # execution, so consumed tokens are removed by identity after the
        # sweep rather than rebuilding the (possibly grown) list.
        snapshot = list(execution.waiting_tokens)
        consumed_ids = set()
        for token in snapshot:
            node_id, env = token
            table = self._tables[operation][node_id]
            rows = [
                r for r in table.postprocessing.rows if r.event == event
            ]
            if not rows:
                continue
            env.update(payload)
            fired = 0
            for row in rows:
                key = (operation, row.edge_id)
                compiled = self._guards[key]
                try:
                    if not (compiled is None or compiled(env)):
                        continue
                    out_env = env
                    actions = self._actions[key]
                    if actions:
                        out_env = dict(env)
                        for target, expr in actions:
                            out_env[target] = expr.value(env)
                except Exception as exc:
                    self._finish(execution, "fault",
                                 fault=f"routing at {node_id!r}: {exc}")
                    return True
                fired += 1
                self._enter_node(execution, row.target_node,
                                 dict(out_env), via_edge=row.edge_id)
                self._emit_events(execution, row)
            if fired:
                consumed_ids.add(id(token))
        execution.waiting_tokens = [
            t for t in execution.waiting_tokens
            if id(t) not in consumed_ids
        ]
        return bool(consumed_ids)

    def _on_deadline(self, execution_id: str) -> None:
        execution = self._executions.get(execution_id)
        if execution is None or execution.status != "running":
            return
        self._finish(execution, "timeout",
                     fault="execution exceeded its deadline")

    def _finish(
        self,
        execution: _CentralExecution,
        status: str,
        outputs: Optional[Dict[str, Any]] = None,
        fault: str = "",
    ) -> None:
        execution.status = status
        execution.finished_ms = self.transport.now_ms()
        if execution.cancel_deadline is not None:
            execution.cancel_deadline()
            execution.cancel_deadline = None
        spec = None
        if self.composite.description.has_operation(execution.operation):
            spec = self.composite.description.operation(execution.operation)
        if status == "success" and spec is not None and spec.outputs:
            projected = {
                p.name: (outputs or {}).get(p.name) for p in spec.outputs
            }
        else:
            projected = dict(outputs or {})
        self.send(execution.client_node, execution.client_endpoint,
                  ExecuteResult(
                      execution_id=execution.execution_id,
                      status=status,
                      outputs=projected,
                      fault=fault,
                      request_key=execution.request_key,
                  ))

    # Introspection -----------------------------------------------------------

    def success_count(self) -> int:
        return sum(
            1 for e in self._executions.values() if e.status == "success"
        )

    def records(self) -> "List[_CentralExecution]":
        return list(self._executions.values())


@dataclass
class CentralDeployment:
    """Mirror of :class:`CompositeDeployment` for the baseline."""

    orchestrator: CentralOrchestrator

    @property
    def address(self) -> "Tuple[str, str]":
        return self.orchestrator.address

    def undeploy(self) -> None:
        self.orchestrator.uninstall()


def deploy_central(
    composite: CompositeService,
    host: str,
    transport: Transport,
    directory: ServiceDirectory,
    registry: Optional[FunctionRegistry] = None,
    default_timeout_ms: Optional[float] = None,
    kernel: Optional[ActorKernel] = None,
) -> CentralDeployment:
    """Install the central orchestrator for ``composite`` on ``host``."""
    missing = [
        s for s in composite.component_services()
        if not directory.knows(s)
    ]
    if missing:
        raise DeploymentError(
            f"cannot deploy central orchestrator for {composite.name!r}: "
            f"component service(s) {sorted(missing)!r} are not deployed"
        )
    if not transport.has_node(host):
        transport.add_node(host)
    orchestrator = CentralOrchestrator(
        composite, host, transport, directory,
        registry=registry, default_timeout_ms=default_timeout_ms,
        kernel=kernel,
    )
    orchestrator.start()
    return CentralDeployment(orchestrator=orchestrator)
