"""Lexical analysis for the guard expression language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from repro.exceptions import TokenizeError


def _is_ascii_digit(ch: str) -> bool:
    """ASCII-only digit test: unicode digits like '²' pass str.isdigit()
    but are not valid number characters in this language."""
    return "0" <= ch <= "9"


class TokenType(enum.Enum):
    """Kinds of lexical tokens the parser understands."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    BOOLEAN = "boolean"
    NULL = "null"
    AND = "and"
    OR = "or"
    NOT = "not"
    IN = "in"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    DOT = "."
    EOF = "eof"


#: Keywords are case-insensitive, matching the paper's informal notation
#: (guards are written both as ``NOT near(...)`` and ``not near(...)``).
_KEYWORDS = {
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "in": TokenType.IN,
    "true": TokenType.BOOLEAN,
    "false": TokenType.BOOLEAN,
    "null": TokenType.NULL,
}

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: a ``str`` for identifiers and
    strings, ``int``/``float`` for numbers, ``bool`` for booleans and
    ``None`` for the null literal.
    """

    type: TokenType
    value: Union[str, int, float, bool, None]
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"


def _read_string(text: str, start: int) -> "tuple[Token, int]":
    quote = text[start]
    i = start + 1
    chunks: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise TokenizeError("unterminated escape in string", i)
            nxt = text[i + 1]
            escapes = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
            if nxt not in escapes:
                raise TokenizeError(f"invalid escape \\{nxt}", i)
            chunks.append(escapes[nxt])
            i += 2
        elif ch == quote:
            return Token(TokenType.STRING, "".join(chunks), start), i + 1
        else:
            chunks.append(ch)
            i += 1
    raise TokenizeError("unterminated string literal", start)


def _read_number(text: str, start: int) -> "tuple[Token, int]":
    i = start
    seen_dot = False
    while i < len(text) and (_is_ascii_digit(text[i]) or text[i] == "."):
        if text[i] == ".":
            # A second dot ends the number (e.g. would be a path expression,
            # which this language does not support inside numbers).
            if seen_dot:
                break
            # Only treat the dot as part of the number if a digit follows.
            if i + 1 >= len(text) or not _is_ascii_digit(text[i + 1]):
                break
            seen_dot = True
        i += 1
    seen_exponent = False
    if i < len(text) and text[i] in "eE":
        # Scientific notation: e[+-]?digits, only if digits actually follow.
        j = i + 1
        if j < len(text) and text[j] in "+-":
            j += 1
        if j < len(text) and _is_ascii_digit(text[j]):
            while j < len(text) and _is_ascii_digit(text[j]):
                j += 1
            i = j
            seen_exponent = True
    raw = text[start:i]
    value: Union[int, float] = (
        float(raw) if (seen_dot or seen_exponent) else int(raw)
    )
    return Token(TokenType.NUMBER, value, start), i


def _read_ident(text: str, start: int) -> "tuple[Token, int]":
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    raw = text[start:i]
    lowered = raw.lower()
    if lowered in _KEYWORDS:
        ttype = _KEYWORDS[lowered]
        if ttype is TokenType.BOOLEAN:
            return Token(ttype, lowered == "true", start), i
        if ttype is TokenType.NULL:
            return Token(ttype, None, start), i
        return Token(ttype, lowered, start), i
    return Token(TokenType.IDENT, raw, start), i


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into a token list terminated by an EOF token.

    Raises :class:`~repro.exceptions.TokenizeError` on any character that
    does not belong to the language.
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "'\"":
            token, i = _read_string(text, i)
            tokens.append(token)
            continue
        if _is_ascii_digit(ch):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_ident(text, i)
            tokens.append(token)
            continue
        if ch == "!" and i + 1 < n and text[i + 1] == "=":
            tokens.append(Token(TokenType.NEQ, "!=", i))
            i += 2
            continue
        if ch == "<":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(TokenType.LTE, "<=", i))
                i += 2
            elif i + 1 < n and text[i + 1] == ">":
                tokens.append(Token(TokenType.NEQ, "<>", i))
                i += 2
            else:
                tokens.append(Token(TokenType.LT, "<", i))
                i += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(TokenType.GTE, ">=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.GT, ">", i))
                i += 1
            continue
        if ch == "=" and i + 1 < n and text[i + 1] == "=":
            tokens.append(Token(TokenType.EQ, "==", i))
            i += 2
            continue
        if ch == "&" and i + 1 < n and text[i + 1] == "&":
            tokens.append(Token(TokenType.AND, "&&", i))
            i += 2
            continue
        if ch == "|" and i + 1 < n and text[i + 1] == "|":
            tokens.append(Token(TokenType.OR, "||", i))
            i += 2
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", i))
            i += 1
            continue
        if ch in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[ch], ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:
    """Iterate tokens lazily; convenience wrapper around :func:`tokenize`."""
    yield from tokenize(text)
