"""Registry of helper functions callable from guard expressions.

The paper's travel scenario uses two domain predicates —
``domestic(destination)`` and ``near(major_attraction, accommodation)`` —
whose definitions live with the deployed platform, not with the statechart.
:class:`FunctionRegistry` holds such bindings; :func:`default_registry`
ships a set of generic helpers plus the travel-scenario predicates with
documented default semantics that examples and tests can override.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional

from repro.exceptions import EvaluationError, UnknownFunctionError

ExprFunction = Callable[..., Any]


class FunctionRegistry:
    """A named collection of functions available to guard expressions.

    Registries can be chained: lookups fall back to ``parent`` so a
    deployment can shadow a generic helper with a domain-specific one
    without copying the whole default set.
    """

    def __init__(self, parent: Optional["FunctionRegistry"] = None) -> None:
        self._functions: Dict[str, ExprFunction] = {}
        self._parent = parent

    def register(self, name: str, func: ExprFunction) -> None:
        """Bind ``name`` to ``func``, shadowing any parent binding."""
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise ValueError(f"invalid function name {name!r}")
        self._functions[name] = func

    def registered(self, name: str) -> Callable[[ExprFunction], ExprFunction]:
        """Decorator form of :meth:`register`."""

        def decorator(func: ExprFunction) -> ExprFunction:
            self.register(name, func)
            return func

        return decorator

    def lookup(self, name: str) -> ExprFunction:
        """Return the function bound to ``name``.

        Raises :class:`~repro.exceptions.UnknownFunctionError` when the
        name is bound neither here nor in any parent registry.
        """
        registry: Optional[FunctionRegistry] = self
        while registry is not None:
            if name in registry._functions:
                return registry._functions[name]
            registry = registry._parent
        raise UnknownFunctionError(name)

    def __contains__(self, name: str) -> bool:
        try:
            self.lookup(name)
        except UnknownFunctionError:
            return False
        return True

    def names(self) -> Iterator[str]:
        """Iterate all visible function names (own + inherited)."""
        seen = set()
        registry: Optional[FunctionRegistry] = self
        while registry is not None:
            for name in registry._functions:
                if name not in seen:
                    seen.add(name)
                    yield name
            registry = registry._parent

    def child(self) -> "FunctionRegistry":
        """Create an empty registry inheriting from this one."""
        return FunctionRegistry(parent=self)


def _as_number(value: Any, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{context} requires a number, got {value!r}")
    return float(value)


#: Countries treated as "domestic" by the default travel predicates.  The
#: original demo ran in Australia; examples may override via a registry
#: child.
DOMESTIC_COUNTRY = "australia"

#: Cities the default ``domestic`` predicate knows to be Australian.
_AUSTRALIAN_CITIES = {
    "sydney", "melbourne", "brisbane", "perth", "adelaide", "canberra",
    "darwin", "hobart", "cairns", "gold coast", "alice springs",
}

#: Distance (km) under which two places count as "near" by default.
NEAR_THRESHOLD_KM = 20.0


def make_default_functions() -> Dict[str, ExprFunction]:
    """Build the default helper-function set as a plain dict."""

    def fn_domestic(destination: Any) -> bool:
        """True when the destination is in the platform's home country."""
        if isinstance(destination, Mapping):
            country = str(destination.get("country", "")).lower()
            return country == DOMESTIC_COUNTRY
        if destination is None:
            raise EvaluationError("domestic() got a null destination")
        return str(destination).lower() in _AUSTRALIAN_CITIES

    def fn_near(place_a: Any, place_b: Any) -> bool:
        """True when two places are within :data:`NEAR_THRESHOLD_KM`.

        Accepts mappings with ``lat``/``lon`` keys, ``(lat, lon)`` pairs,
        or plain strings (equal strings are near, others are not).
        """
        coords_a = _coords(place_a)
        coords_b = _coords(place_b)
        if coords_a is None or coords_b is None:
            return _place_name(place_a) == _place_name(place_b)
        return haversine_km(coords_a, coords_b) <= NEAR_THRESHOLD_KM

    def fn_distance(place_a: Any, place_b: Any) -> float:
        coords_a = _coords(place_a)
        coords_b = _coords(place_b)
        if coords_a is None or coords_b is None:
            raise EvaluationError("distance() requires coordinates")
        return haversine_km(coords_a, coords_b)

    return {
        "domestic": fn_domestic,
        "near": fn_near,
        "distance": fn_distance,
        "abs": lambda x: abs(_as_number(x, "abs()")),
        "min": lambda *xs: min(_as_number(x, "min()") for x in xs),
        "max": lambda *xs: max(_as_number(x, "max()") for x in xs),
        "round": lambda x: round(_as_number(x, "round()")),
        "floor": lambda x: math.floor(_as_number(x, "floor()")),
        "ceil": lambda x: math.ceil(_as_number(x, "ceil()")),
        "length": _fn_length,
        "lower": lambda s: str(s).lower(),
        "upper": lambda s: str(s).upper(),
        "contains": _fn_contains,
        "starts_with": lambda s, p: str(s).startswith(str(p)),
        "ends_with": lambda s, p: str(s).endswith(str(p)),
        "defined": lambda v: v is not None,
        "empty": lambda v: _fn_length(v) == 0,
    }


def _fn_length(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, (str, list, tuple, dict, set)):
        return len(value)
    raise EvaluationError(f"length() cannot measure {value!r}")


def _fn_contains(container: Any, item: Any) -> bool:
    if container is None:
        return False
    if isinstance(container, str):
        return str(item) in container
    if isinstance(container, Iterable):
        return item in container
    raise EvaluationError(f"contains() cannot search {container!r}")


def _place_name(place: Any) -> str:
    if isinstance(place, Mapping):
        return str(place.get("name", place)).lower()
    return str(place).lower()


def _coords(place: Any) -> "Optional[tuple[float, float]]":
    if isinstance(place, Mapping) and "lat" in place and "lon" in place:
        return float(place["lat"]), float(place["lon"])
    if (
        isinstance(place, (tuple, list))
        and len(place) == 2
        and all(isinstance(c, (int, float)) for c in place)
    ):
        return float(place[0]), float(place[1])
    return None


def haversine_km(a: "tuple[float, float]", b: "tuple[float, float]") -> float:
    """Great-circle distance in kilometres between two (lat, lon) pairs."""
    lat1, lon1 = (math.radians(c) for c in a)
    lat2, lon2 = (math.radians(c) for c in b)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    )
    return 2 * 6371.0 * math.asin(min(1.0, math.sqrt(h)))


def default_registry() -> FunctionRegistry:
    """Create a fresh registry holding the default helper set."""
    registry = FunctionRegistry()
    for name, func in make_default_functions().items():
        registry.register(name, func)
    return registry
