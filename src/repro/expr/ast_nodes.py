"""Abstract syntax tree for the guard expression language.

Nodes are immutable dataclasses.  ``unparse`` on every node produces a
canonical textual form that re-parses to an equal tree — the property-based
tests rely on that round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

LiteralValue = Union[str, int, float, bool, None]


class Node:
    """Base class of all AST nodes."""

    def unparse(self) -> str:
        """Render the node back to canonical expression text."""
        raise NotImplementedError

    def variables(self) -> "frozenset[str]":
        """Return the set of free variable names referenced by this tree."""
        raise NotImplementedError

    def functions(self) -> "frozenset[str]":
        """Return the set of function names called by this tree."""
        raise NotImplementedError


def _quote(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


@dataclass(frozen=True)
class Literal(Node):
    """A constant: string, number, boolean or null."""

    value: LiteralValue

    def unparse(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return _quote(self.value)
        return repr(self.value)

    def variables(self) -> "frozenset[str]":
        return frozenset()

    def functions(self) -> "frozenset[str]":
        return frozenset()


@dataclass(frozen=True)
class Variable(Node):
    """A reference to a variable in the evaluation environment.

    ``path`` supports dotted access into mapping-valued variables, e.g.
    ``booking.price`` is ``Variable("booking", ("price",))``.
    """

    name: str
    path: Tuple[str, ...] = ()

    def unparse(self) -> str:
        return ".".join((self.name,) + self.path)

    def variables(self) -> "frozenset[str]":
        return frozenset({self.name})

    def functions(self) -> "frozenset[str]":
        return frozenset()


@dataclass(frozen=True)
class FunctionCall(Node):
    """A call to a registered helper predicate/function."""

    name: str
    args: Tuple[Node, ...]

    def unparse(self) -> str:
        rendered = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.name}({rendered})"

    def variables(self) -> "frozenset[str]":
        result: "frozenset[str]" = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def functions(self) -> "frozenset[str]":
        result = frozenset({self.name})
        for arg in self.args:
            result |= arg.functions()
        return result


@dataclass(frozen=True)
class UnaryOp(Node):
    """``not x`` or arithmetic negation ``-x``."""

    op: str  # "not" | "-"
    operand: Node

    def unparse(self) -> str:
        inner = self.operand.unparse()
        if isinstance(self.operand, (BinaryOp, Comparison, UnaryOp)):
            inner = f"({inner})"
        if self.op == "not":
            return f"not {inner}"
        return f"-{inner}"

    def variables(self) -> "frozenset[str]":
        return self.operand.variables()

    def functions(self) -> "frozenset[str]":
        return self.operand.functions()


#: Binary operator precedence, used by ``unparse`` to decide parenthesisation.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


@dataclass(frozen=True)
class BinaryOp(Node):
    """Logical (``and``/``or``) or arithmetic binary operation."""

    op: str
    left: Node
    right: Node

    def _render(self, child: Node, right_side: bool) -> str:
        text = child.unparse()
        if isinstance(child, BinaryOp):
            mine = _PRECEDENCE[self.op]
            theirs = _PRECEDENCE[child.op]
            if theirs < mine or (theirs == mine and right_side):
                return f"({text})"
        elif isinstance(child, Comparison) and self.op in ("and", "or"):
            # comparisons bind tighter than logic; no parens needed
            return text
        elif isinstance(child, Comparison):
            return f"({text})"
        elif isinstance(child, UnaryOp) and child.op == "not" and (
            self.op not in ("and", "or")
        ):
            # "not" sits above arithmetic in the grammar: (not x) + y
            # must keep its parentheses to survive re-parsing.
            return f"({text})"
        return text

    def unparse(self) -> str:
        left = self._render(self.left, right_side=False)
        right = self._render(self.right, right_side=True)
        return f"{left} {self.op} {right}"

    def variables(self) -> "frozenset[str]":
        return self.left.variables() | self.right.variables()

    def functions(self) -> "frozenset[str]":
        return self.left.functions() | self.right.functions()


@dataclass(frozen=True)
class Comparison(Node):
    """A comparison: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``in``."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        def wrap(child: Node) -> str:
            text = child.unparse()
            if isinstance(child, Comparison):
                return f"({text})"
            if isinstance(child, BinaryOp) and child.op in ("and", "or"):
                return f"({text})"
            if isinstance(child, UnaryOp) and child.op == "not":
                return f"({text})"
            return text

        return f"{wrap(self.left)} {self.op} {wrap(self.right)}"

    def variables(self) -> "frozenset[str]":
        return self.left.variables() | self.right.variables()

    def functions(self) -> "frozenset[str]":
        return self.left.functions() | self.right.functions()
