"""Evaluation of guard expression ASTs over variable environments."""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.exceptions import EvaluationError, UnboundVariableError
from repro.expr.ast_nodes import (
    BinaryOp,
    Comparison,
    FunctionCall,
    Literal,
    Node,
    UnaryOp,
    Variable,
)
from repro.expr.functions import FunctionRegistry, default_registry
from repro.expr.parser import parse


class Evaluator:
    """Interprets expression ASTs against an environment and registry.

    Semantics follow the usual dynamically-typed comparison rules:

    * ``and``/``or`` short-circuit and return booleans,
    * ``=``/``!=`` compare any values (numbers compare numerically, so
      ``1 = 1.0`` holds),
    * ordering comparisons require two numbers or two strings,
    * arithmetic requires numbers; ``+`` also concatenates two strings,
    * dotted variable paths index into mapping values,
    * unknown variables raise :class:`UnboundVariableError` (a missing
      binding in a guard is a modelling bug we refuse to hide).
    """

    def __init__(self, registry: Optional[FunctionRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()

    def evaluate(self, node: Node, env: Mapping[str, Any]) -> Any:
        """Evaluate ``node`` and return its value (any type)."""
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise EvaluationError(f"cannot evaluate node {node!r}")
        return method(node, env)

    def evaluate_bool(self, node: Node, env: Mapping[str, Any]) -> bool:
        """Evaluate ``node`` and coerce the result to a boolean.

        Guards must yield booleans; other truthy/falsy values are accepted
        with Python truthiness, matching the permissive ECA notation in the
        paper's figures.
        """
        return bool(self.evaluate(node, env))

    # Node handlers -------------------------------------------------------

    def _eval_literal(self, node: Literal, env: Mapping[str, Any]) -> Any:
        return node.value

    def _eval_variable(self, node: Variable, env: Mapping[str, Any]) -> Any:
        if node.name not in env:
            raise UnboundVariableError(node.name)
        value = env[node.name]
        for attr in node.path:
            if isinstance(value, Mapping) and attr in value:
                value = value[attr]
            elif hasattr(value, attr):
                value = getattr(value, attr)
            else:
                raise EvaluationError(
                    f"variable {node.unparse()!r}: {value!r} has no "
                    f"attribute {attr!r}"
                )
        return value

    def _eval_functioncall(
        self, node: FunctionCall, env: Mapping[str, Any]
    ) -> Any:
        func = self.registry.lookup(node.name)
        args = [self.evaluate(arg, env) for arg in node.args]
        try:
            return func(*args)
        except EvaluationError:
            raise
        except TypeError as exc:
            raise EvaluationError(
                f"call {node.unparse()!r} failed: {exc}"
            ) from exc

    def _eval_unaryop(self, node: UnaryOp, env: Mapping[str, Any]) -> Any:
        value = self.evaluate(node.operand, env)
        if node.op == "not":
            return not value
        if node.op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(f"cannot negate {value!r}")
            return -value
        raise EvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_binaryop(self, node: BinaryOp, env: Mapping[str, Any]) -> Any:
        if node.op == "and":
            return bool(
                self.evaluate(node.left, env) and self.evaluate(node.right, env)
            )
        if node.op == "or":
            return bool(
                self.evaluate(node.left, env) or self.evaluate(node.right, env)
            )
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if node.op == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return self._arith(node.op, left, right)
        return self._arith(node.op, left, right)

    @staticmethod
    def _arith(op: str, left: Any, right: Any) -> Any:
        for value in (left, right):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(
                    f"arithmetic {op!r} requires numbers, got {value!r}"
                )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        raise EvaluationError(f"unknown operator {op!r}")

    def _eval_comparison(self, node: Comparison, env: Mapping[str, Any]) -> bool:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        op = node.op
        if op == "=":
            return self._equal(left, right)
        if op == "!=":
            return not self._equal(left, right)
        if op == "in":
            if right is None:
                return False
            if isinstance(right, str):
                return str(left) in right
            try:
                return left in right
            except TypeError as exc:
                raise EvaluationError(
                    f"'in' cannot search {right!r}"
                ) from exc
        return self._ordered(op, left, right)

    @staticmethod
    def _equal(left: Any, right: Any) -> bool:
        if isinstance(left, bool) or isinstance(right, bool):
            return left is right if isinstance(left, bool) and isinstance(
                right, bool
            ) else False
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left) == float(right)
        return left == right

    @staticmethod
    def _ordered(op: str, left: Any, right: Any) -> bool:
        numbers = (
            isinstance(left, (int, float))
            and not isinstance(left, bool)
            and isinstance(right, (int, float))
            and not isinstance(right, bool)
        )
        strings = isinstance(left, str) and isinstance(right, str)
        if not (numbers or strings):
            raise EvaluationError(
                f"cannot order {left!r} {op} {right!r}: need two numbers "
                f"or two strings"
            )
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise EvaluationError(f"unknown comparison {op!r}")


class CompiledExpression:
    """A parsed expression bound to an evaluator, cached for reuse.

    Routing-table preconditions are evaluated once per notification per
    state; compiling them at deployment time keeps the runtime hot path
    free of parsing, mirroring the paper's "statically extracted" claim.
    """

    __slots__ = ("text", "ast", "_evaluator")

    def __init__(
        self,
        text: str,
        registry: Optional[FunctionRegistry] = None,
    ) -> None:
        self.text = text
        self.ast = parse(text)
        self._evaluator = Evaluator(registry)

    def __call__(self, env: Mapping[str, Any]) -> bool:
        return self._evaluator.evaluate_bool(self.ast, env)

    def value(self, env: Mapping[str, Any]) -> Any:
        """Evaluate and return the raw (non-coerced) value."""
        return self._evaluator.evaluate(self.ast, env)

    @property
    def variables(self) -> "frozenset[str]":
        return self.ast.variables()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledExpression({self.text!r})"


def compile_expression(
    text: str, registry: Optional[FunctionRegistry] = None
) -> CompiledExpression:
    """Parse ``text`` once and return a reusable callable."""
    return CompiledExpression(text, registry)


def evaluate(
    text: str,
    env: Optional[Mapping[str, Any]] = None,
    registry: Optional[FunctionRegistry] = None,
) -> Any:
    """One-shot convenience: parse and evaluate ``text`` against ``env``."""
    evaluator = Evaluator(registry)
    return evaluator.evaluate(parse(text), env or {})
