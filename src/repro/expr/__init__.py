"""Guard and ECA-rule expression language.

SELF-SERV transitions carry ECA rules whose condition part is a boolean
expression over operation parameters and helper predicates, e.g. the travel
scenario's ``domestic(destination)`` and
``not near(major_attraction, accommodation)``.  Routing-table preconditions
reuse the same language.  This package provides:

* :func:`tokenize` — the lexical analyser,
* :func:`parse` — recursive-descent parser producing an AST,
* :func:`evaluate` / :class:`Evaluator` — AST interpretation over a
  variable environment and a :class:`FunctionRegistry`,
* :func:`compile_expression` — parse once, evaluate many times.

The grammar (lowest to highest precedence)::

    expr        := or_expr
    or_expr     := and_expr ( "or" and_expr )*
    and_expr    := not_expr ( "and" not_expr )*
    not_expr    := "not" not_expr | comparison
    comparison  := additive ( ("=" | "!=" | "<" | "<=" | ">" | ">=" | "in") additive )?
    additive    := term ( ("+" | "-") term )*
    term        := factor ( ("*" | "/" | "%") factor )*
    factor      := literal | variable | function call | "(" expr ")" | "-" factor
"""

from repro.expr.ast_nodes import (
    BinaryOp,
    Comparison,
    FunctionCall,
    Literal,
    Node,
    UnaryOp,
    Variable,
)
from repro.expr.evaluator import (
    CompiledExpression,
    Evaluator,
    compile_expression,
    evaluate,
)
from repro.expr.functions import FunctionRegistry, default_registry
from repro.expr.parser import parse
from repro.expr.tokens import Token, TokenType, tokenize

__all__ = [
    "BinaryOp",
    "Comparison",
    "CompiledExpression",
    "Evaluator",
    "FunctionCall",
    "FunctionRegistry",
    "Literal",
    "Node",
    "Token",
    "TokenType",
    "UnaryOp",
    "Variable",
    "compile_expression",
    "default_registry",
    "evaluate",
    "parse",
    "tokenize",
]
