"""Recursive-descent parser for the guard expression language."""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import ParseError
from repro.expr.ast_nodes import (
    BinaryOp,
    Comparison,
    FunctionCall,
    Literal,
    Node,
    UnaryOp,
    Variable,
)
from repro.expr.tokens import Token, TokenType, tokenize

_COMPARISON_TOKENS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
    TokenType.IN: "in",
}


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, ttype: TokenType) -> Token:
        token = self.current
        if token.type is not ttype:
            raise ParseError(
                f"expected {ttype.value!r} but found {token.type.value!r}",
                token.position,
            )
        return self._advance()

    # Grammar rules, lowest precedence first -----------------------------

    def parse_expression(self) -> Node:
        return self._or_expr()

    def _or_expr(self) -> Node:
        node = self._and_expr()
        while self.current.type is TokenType.OR:
            self._advance()
            node = BinaryOp("or", node, self._and_expr())
        return node

    def _and_expr(self) -> Node:
        node = self._not_expr()
        while self.current.type is TokenType.AND:
            self._advance()
            node = BinaryOp("and", node, self._not_expr())
        return node

    def _not_expr(self) -> Node:
        if self.current.type is TokenType.NOT:
            self._advance()
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Node:
        node = self._additive()
        ttype = self.current.type
        if ttype in _COMPARISON_TOKENS:
            op = _COMPARISON_TOKENS[ttype]
            self._advance()
            right = self._additive()
            return Comparison(op, node, right)
        return node

    def _additive(self) -> Node:
        node = self._term()
        while self.current.type in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self.current.type is TokenType.PLUS else "-"
            self._advance()
            node = BinaryOp(op, node, self._term())
        return node

    def _term(self) -> Node:
        node = self._factor()
        ops = {
            TokenType.STAR: "*",
            TokenType.SLASH: "/",
            TokenType.PERCENT: "%",
        }
        while self.current.type in ops:
            op = ops[self.current.type]
            self._advance()
            node = BinaryOp(op, node, self._factor())
        return node

    def _factor(self) -> Node:
        token = self.current
        if token.type is TokenType.MINUS:
            self._advance()
            return UnaryOp("-", self._factor())
        if token.type is TokenType.LPAREN:
            self._advance()
            node = self.parse_expression()
            self._expect(TokenType.RPAREN)
            return node
        if token.type in (TokenType.NUMBER, TokenType.STRING,
                          TokenType.BOOLEAN, TokenType.NULL):
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.IDENT:
            return self._ident_factor()
        raise ParseError(
            f"unexpected token {token.type.value!r}", token.position
        )

    def _ident_factor(self) -> Node:
        name_token = self._advance()
        name = str(name_token.value)
        if self.current.type is TokenType.LPAREN:
            self._advance()
            args: List[Node] = []
            if self.current.type is not TokenType.RPAREN:
                args.append(self.parse_expression())
                while self.current.type is TokenType.COMMA:
                    self._advance()
                    args.append(self.parse_expression())
            self._expect(TokenType.RPAREN)
            return FunctionCall(name, tuple(args))
        path: Tuple[str, ...] = ()
        while self.current.type is TokenType.DOT:
            self._advance()
            attr = self._expect(TokenType.IDENT)
            path = path + (str(attr.value),)
        return Variable(name, path)


def parse(text: str) -> Node:
    """Parse ``text`` into an AST.

    Raises :class:`~repro.exceptions.ParseError` if the text is not a
    single complete expression.
    """
    parser = _Parser(tokenize(text))
    node = parser.parse_expression()
    trailing = parser.current
    if trailing.type is not TokenType.EOF:
        raise ParseError(
            f"unexpected trailing token {trailing.type.value!r}",
            trailing.position,
        )
    return node
