"""The named scenario library: curated multi-tenant SLA workloads.

Three production shapes, each a :class:`LibraryScenario` built from a
pinned generator seed and a tenant roster, runnable with one call:

* ``flash-sale`` — a premium tenant under a flash-crowd burst
  (:class:`~repro.workload.arrivals.BurstyArrivals`) with a token-bucket
  shedding the worst of the spike; communities ride the
  ``health-weighted`` selection policy and SLA-derived hedging,
* ``noisy-neighbor`` — a premium tenant sharing the platform with a
  batch tenant offering ~6x its admitted rate; the governor's rate
  limit and quota keep the premium SLA intact,
* ``marketplace-churn`` — every slot is a community and the membership
  churns mid-run (join / leave / suspend / resume) while buyers keep
  arriving; the run must complete every admitted request anyway.

Each run returns a :class:`LibraryReport` whose ``metrics()`` rows feed
the ``BENCH_SCENARIOS.json`` ledger (``benchmarks/_ledger.py``), which
``tools/check_bench.py`` regression-gates in CI.  Everything runs on
the simulated clock from seeded streams, so every number is
bit-stable across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.config import PlatformConfig
from repro.api.platform import Platform
from repro.scenarios.differential import scenario_composite
from repro.scenarios.generator import (
    GeneratedScenario,
    MemberSpec,
    ScenarioParams,
    _member_service,
    generate_scenario,
)
from repro.scenarios.tenants import (
    TIERS,
    SlaLedger,
    SlaTarget,
    TenantGovernor,
    TenantSpec,
    resilience_for,
    selection_policy_for,
)
from repro.services.community import ServiceCommunity
from repro.sim.random_streams import RandomStreams
from repro.workload.arrivals import BurstyArrivals, PoissonArrivals


@dataclass
class ChurnEvent:
    """One scheduled membership change of a named community."""

    at_ms: float
    #: ``join`` | ``leave`` | ``suspend`` | ``resume``
    action: str
    #: For ``join``: the member spec to deploy and enrol.  For the
    #: others: the member name to act on.
    member: "MemberSpec | str"


@dataclass
class LibraryScenario:
    """A curated scenario: topology + tenant roster + churn schedule."""

    name: str
    scenario: GeneratedScenario
    tenants: "List[TenantSpec]"
    horizon_ms: float
    #: Per-host serial handling cost — the knob that makes overload
    #: visible as queueing (0 would hide the bursts entirely).
    processing_ms: float = 1.0
    seed: int = 0
    churn: "List[ChurnEvent]" = field(default_factory=list)
    with_resilience: bool = True


@dataclass
class LibraryReport:
    """Everything one library-scenario run measured."""

    name: str
    ledger: SlaLedger
    makespan_ms: float
    requests_total: int
    completed_total: int
    churn_applied: int = 0

    def rows(self) -> "List[Dict[str, Any]]":
        return [
            self.ledger.row(tenant)
            for tenant in sorted(self.ledger.governor.tenants)
        ]

    def check_invariants(self) -> "List[str]":
        """Accounting conservation violations (empty = clean)."""
        return self.ledger.check_sums()

    def metrics(self) -> "List[Tuple[str, float, str, str]]":
        """Ledger rows: ``(name, value, unit, direction)`` per metric."""
        out: "List[Tuple[str, float, str, str]]" = []
        prefix = self.name.replace("-", "_")
        total_ok = sum(
            account.completed_ok
            for account in self.ledger.accounts.values()
        )
        out.append((f"{prefix}.completed_ok", float(total_ok), "requests",
                    "higher"))
        for tenant in sorted(self.ledger.governor.tenants):
            row = self.ledger.row(tenant)
            spec = self.ledger.governor.tenants[tenant]
            out.append((
                f"{prefix}.{tenant}.attainment",
                float(row["attainment"]), "fraction", "higher",
            ))
            if spec.tier == "premium":
                out.append((
                    f"{prefix}.{tenant}.p99_ms",
                    float(row["p99_ms"]), "ms", "lower",
                ))
            if row["throttled"] or row["rejected"]:
                out.append((
                    f"{prefix}.{tenant}.shed",
                    float(row["throttled"] + row["rejected"]),
                    "requests", "info",
                ))
        return out


def _deploy_library(
    platform: Platform,
    scenario: GeneratedScenario,
    policy: str,
) -> "Tuple[Any, Dict[str, ServiceCommunity]]":
    """Deploy the scenario's slots and composite; return communities."""
    communities: "Dict[str, ServiceCommunity]" = {}
    for slot in scenario.materialize():
        for service in slot.services:
            platform.register_elementary(
                service, f"{service.name}-host", publish=False,
            )
        if slot.community is not None:
            platform.register_community(
                slot.community, f"{slot.spec.logical}-chost",
                policy=policy, publish=False,
            )
            communities[slot.spec.logical] = slot.community
    deployment = platform.deploy_composite(
        scenario_composite(scenario), "composite-host", publish=False,
    )
    return deployment, communities


def _apply_churn(
    platform: Platform,
    communities: "Dict[str, ServiceCommunity]",
    event: ChurnEvent,
    community_name: str,
) -> None:
    community = communities[community_name]
    if event.action == "join":
        member = event.member
        assert isinstance(member, MemberSpec)
        service = _member_service(member, provider=f"{community_name}Late")
        platform.register_elementary(
            service, f"{member.name}-host", publish=False,
        )
        community.join(member.name, profile=member.profile())
    elif event.action == "leave":
        community.leave(str(event.member))
    elif event.action == "suspend":
        community.suspend(str(event.member))
    elif event.action == "resume":
        community.resume(str(event.member))
    else:
        raise ValueError(f"unknown churn action {event.action!r}")


def run_library_scenario(
    library: LibraryScenario,
    horizon_ms: Optional[float] = None,
) -> LibraryReport:
    """Stand the scenario up, drive every tenant's arrivals, account.

    Arrival schedules are drawn up front from per-tenant seeded streams
    and injected open-loop on the simulator clock; the governor admits
    or sheds each arrival at its modelled instant, and every admitted
    request's response time is measured arrival-to-result.
    """
    horizon = horizon_ms if horizon_ms is not None else library.horizon_ms
    # The community selection policy follows the best-served tier on the
    # platform (TIERS is ordered best-first).
    present = {t.tier for t in library.tenants}
    dominant = next(tier for tier in TIERS if tier in present)
    platform = Platform(PlatformConfig(
        seed=library.seed,
        processing_ms=library.processing_ms,
        resilience=(
            resilience_for(library.tenants)
            if library.with_resilience else None
        ),
    ))
    deployment, communities = _deploy_library(
        platform, library.scenario, policy=selection_policy_for(dominant),
    )
    governor = TenantGovernor(library.tenants)
    ledger = SlaLedger(governor)
    session = platform.session("tenants", "edge")
    streams = RandomStreams(library.seed).fork(f"library:{library.name}")

    # (tenant, arrival_ms, handle) triples, appended at modelled time.
    submissions: "List[Tuple[str, float, Any]]" = []
    fired = [0]
    expected = 0
    request = dict(library.scenario.requests[0])
    simulator = platform.transport.simulator

    for spec in library.tenants:
        times = spec.arrivals.times_ms(
            horizon, streams.stream(f"tenant:{spec.name}")
        )
        expected += len(times)

        def arrival(now: float, tenant: str = spec.name) -> None:
            fired[0] += 1
            if governor.admit(tenant, now):
                handle = session.submit(deployment, "run", request)
                submissions.append((tenant, now, handle))

        for at_ms in times:
            simulator.schedule(at_ms, lambda t=at_ms, fn=arrival: fn(t))

    churn_applied = 0
    if library.churn:
        first_community = sorted(communities)[0]

        def churned(event: ChurnEvent) -> None:
            nonlocal churn_applied
            _apply_churn(platform, communities, event, first_community)
            churn_applied += 1

        for event in library.churn:
            simulator.schedule(
                event.at_ms, lambda e=event: churned(e)
            )

    platform.wait_for(
        lambda: fired[0] == expected
        and all(h.done() for _, _, h in submissions),
        timeout_ms=None,
    )
    for tenant, arrival_ms, handle in submissions:
        result = handle.peek()
        if result is None:
            ledger.record_lost(tenant)
            continue
        ledger.record(
            tenant, result.ok,
            latency_ms=result.finished_ms - arrival_ms,
        )
    return LibraryReport(
        name=library.name,
        ledger=ledger,
        makespan_ms=platform.now_ms(),
        requests_total=expected,
        completed_total=sum(
            a.completed for a in ledger.accounts.values()
        ),
        churn_applied=churn_applied,
    )


# The curated scenarios ------------------------------------------------------


def flash_sale() -> LibraryScenario:
    """A premium storefront under a periodic flash-crowd burst."""
    scenario = generate_scenario(101, ScenarioParams(
        tasks_min=4, tasks_max=4,
        p_xor=0.2, p_and=0.2,
        community_rate=0.6,
        slow_rate=0.25, flaky_rate=0.25,
        service_latency_ms=3.0,
        requests_min=1, requests_max=1,
    ))
    shoppers = TenantSpec(
        name="shoppers",
        tier="premium",
        arrivals=BurstyArrivals(
            base_rate_per_s=30.0,
            burst_rate_per_s=240.0,
            burst_every_ms=500.0,
            burst_len_ms=120.0,
        ),
        rate_limit_rps=120.0,
        burst=16,
        sla=SlaTarget(latency_ms=150.0, attainment=0.9),
    )
    return LibraryScenario(
        name="flash-sale",
        scenario=scenario,
        tenants=[shoppers],
        horizon_ms=1500.0,
        seed=11,
    )


def noisy_neighbor() -> LibraryScenario:
    """A batch tenant floods the platform a premium tenant lives on."""
    scenario = generate_scenario(202, ScenarioParams(
        tasks_min=3, tasks_max=3,
        p_xor=0.0, p_and=0.2,
        community_rate=0.5,
        slow_rate=0.2, flaky_rate=0.2,
        service_latency_ms=3.0,
        requests_min=1, requests_max=1,
    ))
    tenant_a = TenantSpec(
        name="tenant-a",
        tier="premium",
        arrivals=PoissonArrivals(rate_per_s=40.0),
        sla=SlaTarget(latency_ms=120.0, attainment=0.9),
    )
    neighbor = TenantSpec(
        name="neighbor",
        tier="batch",
        arrivals=PoissonArrivals(rate_per_s=250.0),
        rate_limit_rps=60.0,
        burst=8,
        quota=80,
        sla=SlaTarget(latency_ms=1000.0, attainment=0.5),
    )
    return LibraryScenario(
        name="noisy-neighbor",
        scenario=scenario,
        tenants=[tenant_a, neighbor],
        horizon_ms=1200.0,
        seed=13,
    )


def marketplace_churn() -> LibraryScenario:
    """Buyers keep arriving while the seller communities churn."""
    scenario = generate_scenario(303, ScenarioParams(
        tasks_min=3, tasks_max=3,
        p_xor=0.0, p_and=0.0,
        community_rate=1.0,
        community_min=3, community_max=4,
        slow_rate=0.3, flaky_rate=0.3,
        service_latency_ms=3.0,
        requests_min=1, requests_max=1,
    ))
    # The churn targets the (deterministic) first community's members.
    communities = sorted(
        (slot for slot in scenario.slots if slot.is_community),
        key=lambda slot: slot.logical,
    )
    assert communities, "marketplace scenario must have communities"
    first = communities[0]
    churn = [
        ChurnEvent(at_ms=300.0, action="join", member=MemberSpec(
            name=f"{first.logical}late0", latency_ms=3.0,
        )),
        ChurnEvent(at_ms=600.0, action="leave",
                   member=first.members[1].name),
        ChurnEvent(at_ms=900.0, action="suspend",
                   member=first.members[0].name),
        ChurnEvent(at_ms=1200.0, action="resume",
                   member=first.members[0].name),
    ]
    buyers = TenantSpec(
        name="buyers",
        tier="standard",
        arrivals=PoissonArrivals(rate_per_s=60.0),
        sla=SlaTarget(latency_ms=200.0, attainment=0.8),
    )
    return LibraryScenario(
        name="marketplace-churn",
        scenario=scenario,
        tenants=[buyers],
        horizon_ms=1500.0,
        seed=17,
        churn=churn,
    )


#: Name -> factory of every library scenario.
LIBRARY: "Dict[str, Callable[[], LibraryScenario]]" = {
    "flash-sale": flash_sale,
    "noisy-neighbor": noisy_neighbor,
    "marketplace-churn": marketplace_churn,
}


def library_scenario(name: str) -> LibraryScenario:
    """Build one library scenario by name."""
    factory = LIBRARY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown library scenario {name!r}; available: "
            f"{sorted(LIBRARY)}"
        )
    return factory()
