"""Seed-deterministic random scenario generator.

A *scenario* is everything the differential harness needs to drive one
generated composite-service topology through any runtime: the statechart
(random depth / fan-out / join density via the workload grammar), a
*slot* table saying which logical services are plain providers and which
are communities (with per-member QoS profiles drawn from the fault mix),
and a request batch exercising the XOR branches.

Every draw comes from named streams of one
:class:`~repro.sim.random_streams.RandomStreams` seeded with the scenario
seed — ``topology``, ``communities``, ``faults`` and ``requests`` — so a
scenario is fully replayable from ``(seed, params)`` alone, and adding a
new draw to one stream never shifts the others (the VOODB-style
"generic random simulation model" property that makes a corpus of
hundreds of seeds an enumerable, repeatable experiment space).

Scenarios are *specs*, not live objects: :meth:`GeneratedScenario
.materialize` builds fresh :class:`~repro.services.elementary
.ElementaryService` / :class:`~repro.services.community.ServiceCommunity`
instances on every call, so the same scenario can be deployed into
several platforms (classic, central baseline, fleet) without sharing any
mutable state between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.services.community import ServiceCommunity
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService
from repro.services.profile import ServiceProfile
from repro.sim.random_streams import RandomStreams
from repro.statecharts.model import Statechart
from repro.workload.generator import GeneratorParams, make_workload


@dataclass(frozen=True)
class ScenarioParams:
    """Steering knobs of the scenario generator.

    Structure:

    * ``tasks_min``/``tasks_max`` — task-budget range (composition depth),
    * ``p_xor``/``p_and`` — branch probabilities of the workload grammar
      (fan-out and join density of the generated chart),
    * ``community_rate`` — fraction of logical slots promoted from a
      plain provider to a community,
    * ``community_min``/``community_max`` — community size range.

    Fault mix (per *member* provider):

    * ``slow_rate``/``slow_factor`` — fraction of providers dealt a
      degraded profile (latency multiplied by ``slow_factor``),
    * ``flaky_rate``/``flaky_reliability`` — fraction of *redundant*
      community members dealt a failure probability.  At least one
      member of every community always stays fully reliable, so a
      community-backed slot still completes (by failover) and scenario
      outcomes stay deterministic.  Plain (non-community) slots are
      never made flaky — a coin-flip fault on an unbacked provider
      would make the composition outcome itself nondeterministic,
      which the differential equivalence checks cannot allow.

    Load shape:

    * ``requests_min``/``requests_max`` — request-batch size range;
      each request redraws every XOR branch variable, so one scenario
      exercises several paths through its own chart.
    """

    tasks_min: int = 3
    tasks_max: int = 9
    p_xor: float = 0.25
    p_and: float = 0.2
    community_rate: float = 0.35
    community_min: int = 2
    community_max: int = 4
    slow_rate: float = 0.25
    slow_factor: float = 4.0
    flaky_rate: float = 0.0
    flaky_reliability: float = 0.6
    service_latency_ms: float = 4.0
    requests_min: int = 1
    requests_max: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.tasks_min <= self.tasks_max:
            raise ValueError("need 1 <= tasks_min <= tasks_max")
        if not 2 <= self.community_min <= self.community_max:
            raise ValueError("need 2 <= community_min <= community_max")
        if not 1 <= self.requests_min <= self.requests_max:
            raise ValueError("need 1 <= requests_min <= requests_max")
        for name in ("community_rate", "slow_rate", "flaky_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 < self.flaky_reliability <= 1.0:
            raise ValueError("flaky_reliability must be in (0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")


@dataclass(frozen=True)
class MemberSpec:
    """One provider instance behind a slot (QoS profile as pure data)."""

    name: str
    latency_ms: float
    reliability: float = 1.0

    def profile(self) -> ServiceProfile:
        return ServiceProfile(
            latency_mean_ms=self.latency_ms,
            latency_jitter_ms=0.0,
            reliability=self.reliability,
        )


@dataclass(frozen=True)
class SlotSpec:
    """One logical service of the chart: a provider or a community.

    ``logical`` is the name the statechart's task states bind to.  A
    single member carrying the logical name itself is a plain provider;
    two or more members make the slot a community (deployed under the
    logical name, members under their own).
    """

    logical: str
    members: "Tuple[MemberSpec, ...]"

    @property
    def is_community(self) -> bool:
        return len(self.members) > 1


def _work_handler(inputs: "Mapping[str, Any]") -> "Dict[str, Any]":
    """The synthetic operation every generated provider serves."""
    step = inputs.get("step") or 0
    return {"result": step + 1}


def _work_spec() -> OperationSpec:
    return OperationSpec(
        name="work",
        inputs=(Parameter("step", ParameterType.INT, required=False),),
        outputs=(Parameter("result", ParameterType.INT),),
    )


def _member_service(spec: MemberSpec, provider: str) -> ElementaryService:
    description = ServiceDescription(
        name=spec.name,
        provider=provider,
        description="generated scenario provider",
    )
    description.add_operation(_work_spec())
    service = ElementaryService(description, spec.profile())
    service.bind("work", _work_handler)
    return service


@dataclass
class MaterializedSlot:
    """Live objects for one slot, freshly built for one deployment."""

    spec: SlotSpec
    #: The member services to deploy (for a plain slot: exactly one,
    #: named like the slot itself).
    services: "List[ElementaryService]"
    #: The community to deploy under the logical name, or ``None``.
    community: Optional[ServiceCommunity] = None


@dataclass(frozen=True)
class GeneratedScenario:
    """A fully specified scenario: chart + slots + request batch."""

    seed: int
    params: ScenarioParams
    chart: Statechart
    composite_name: str
    slots: "Tuple[SlotSpec, ...]"
    requests: "Tuple[Dict[str, Any], ...]"
    task_count: int
    xor_count: int
    and_count: int

    @property
    def community_count(self) -> int:
        return sum(1 for slot in self.slots if slot.is_community)

    @property
    def member_count(self) -> int:
        return sum(len(slot.members) for slot in self.slots)

    def logical_of(self) -> "Dict[str, str]":
        """Deployed provider name -> logical slot name (communities fold)."""
        mapping: Dict[str, str] = {}
        for slot in self.slots:
            for member in slot.members:
                mapping[member.name] = slot.logical
        return mapping

    def structure(self) -> "Tuple[Any, ...]":
        """A comparable fingerprint of everything the seed determined."""
        return (
            self.composite_name,
            self.task_count,
            self.xor_count,
            self.and_count,
            tuple(
                (slot.logical, tuple(
                    (m.name, m.latency_ms, m.reliability)
                    for m in slot.members
                ))
                for slot in self.slots
            ),
            tuple(tuple(sorted(r.items())) for r in self.requests),
        )

    def materialize(self) -> "List[MaterializedSlot]":
        """Fresh service/community objects for one deployment.

        Never reuse the returned objects across platforms: wrappers bind
        to them and communities carry membership listeners.
        """
        out: List[MaterializedSlot] = []
        for slot in self.slots:
            if not slot.is_community:
                service = _member_service(
                    slot.members[0], provider=f"{slot.logical}Provider"
                )
                out.append(MaterializedSlot(spec=slot, services=[service]))
                continue
            description = ServiceDescription(
                name=slot.logical,
                provider=f"{slot.logical}Community",
                description="generated scenario community",
            )
            description.add_operation(_work_spec())
            community = ServiceCommunity(description)
            services = []
            for member in slot.members:
                services.append(_member_service(
                    member, provider=f"{slot.logical}Provider"
                ))
                community.join(member.name, profile=member.profile())
            out.append(MaterializedSlot(
                spec=slot, services=services, community=community,
            ))
        return out


def scenario_prefix(seed: int) -> str:
    """The per-seed service-name prefix (keeps multi-scenario deploys
    collision-free; see the ``service_prefix`` guard in
    :mod:`repro.workload.harness`)."""
    return f"Scn{seed:05d}Svc"


def generate_scenario(
    seed: int, params: Optional[ScenarioParams] = None
) -> GeneratedScenario:
    """Generate the scenario for ``seed`` (pure function of its inputs)."""
    params = params or ScenarioParams()
    streams = RandomStreams(seed)

    topology = streams.stream("topology")
    tasks = topology.randint(params.tasks_min, params.tasks_max)
    workload = make_workload(GeneratorParams(
        tasks=tasks,
        p_xor=params.p_xor,
        p_and=params.p_and,
        service_latency_ms=params.service_latency_ms,
        service_jitter_ms=0.0,
        service_reliability=1.0,
        seed=topology.randrange(2 ** 31),
        service_prefix=scenario_prefix(seed),
    ))

    communities = streams.stream("communities")
    faults = streams.stream("faults")
    slots: List[SlotSpec] = []
    for service in workload.services:
        logical = service.name
        base_latency = params.service_latency_ms

        def draw_latency() -> float:
            if faults.random() < params.slow_rate:
                return base_latency * params.slow_factor
            return base_latency

        if communities.random() < params.community_rate:
            size = communities.randint(
                params.community_min, params.community_max
            )
            members = []
            for index in range(size):
                reliability = 1.0
                # Redundant members (never the first) may be flaky: the
                # community absorbs their faults by failover.
                if index > 0 and faults.random() < params.flaky_rate:
                    reliability = params.flaky_reliability
                members.append(MemberSpec(
                    name=f"{logical}m{index}",
                    latency_ms=draw_latency(),
                    reliability=reliability,
                ))
            slots.append(SlotSpec(logical=logical, members=tuple(members)))
        else:
            slots.append(SlotSpec(
                logical=logical,
                members=(MemberSpec(
                    name=logical, latency_ms=draw_latency()
                ),),
            ))

    request_stream = streams.stream("requests")
    count = request_stream.randint(params.requests_min, params.requests_max)
    branch_vars = sorted(workload.request_args)
    requests = tuple(
        {name: request_stream.random() < 0.5 for name in branch_vars}
        for _ in range(count)
    )

    return GeneratedScenario(
        seed=seed,
        params=params,
        chart=workload.chart,
        composite_name=f"Scenario{seed:05d}",
        slots=tuple(slots),
        requests=requests,
        task_count=workload.task_count,
        xor_count=workload.xor_count,
        and_count=workload.and_count,
    )


def scenario_corpus(
    seeds: "List[int] | range", params: Optional[ScenarioParams] = None
) -> "List[GeneratedScenario]":
    """Generate one scenario per seed (the enumerable experiment space)."""
    return [generate_scenario(seed, params) for seed in seeds]
