"""Differential scenario harness: one scenario, three runtimes.

The point of the scenario corpus: every generated topology is driven
through the **classic** platform (P2P coordinators), the **central**
orchestrator baseline and the **fleet** runtime (sharded slices), and
the three runs must agree — same per-request statuses, same final
outputs, same per-logical-service invocation counts — while holding the
corpus-wide invariants (no lost executions, conserved request
accounting).  Any layer regression that changes *what* a composition
computes, on any of the hundreds of corpus seeds, shows up as a
mismatch here long before a benchmark would notice.

The harness deliberately builds a **fresh platform per runtime** from
freshly materialized services (see :meth:`~repro.scenarios.generator
.GeneratedScenario.materialize`), so no state leaks between the runs
being compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.config import PlatformConfig
from repro.api.platform import Platform
from repro.baselines.central import deploy_central
from repro.fleet.config import FleetConfig
from repro.perf import PerfConfig
from repro.scenarios.generator import GeneratedScenario, MaterializedSlot
from repro.services.composite import CompositeService
from repro.services.description import OperationSpec, ServiceDescription

#: The runtimes the differential suite compares.
RUNTIMES = ("classic", "central", "fleet")


def scenario_composite(scenario: GeneratedScenario) -> CompositeService:
    """A fresh composite wrapping the scenario's chart (open spec)."""
    description = ServiceDescription(
        name=scenario.composite_name,
        provider="ScenarioCorp",
        description="generated scenario composite",
    )
    composite = CompositeService(description)
    composite.define_operation(OperationSpec(name="run"), scenario.chart)
    return composite


@dataclass
class ScenarioRun:
    """What one runtime did with one scenario's request batch."""

    runtime: str
    #: Final status per request, in submission order.
    statuses: "List[str]"
    #: Final outputs env per request, in submission order.
    outputs: "List[Dict[str, Any]]"
    #: Completed provider invocations per *logical* service (community
    #: members fold into their community's name).
    invocations: "Dict[str, int]"
    #: Provider-side faulted invocations (nonzero only with flaky mix).
    faulted: int
    #: Requests that never produced any result (must always be 0).
    lost: int
    #: Virtual quiesce time of the run.
    makespan_ms: float

    @property
    def ok(self) -> bool:
        return self.lost == 0 and all(s == "success" for s in self.statuses)


def _wrapper_counts(
    kernels: "List[Any]", logical_of: "Dict[str, str]"
) -> "Tuple[Dict[str, int], int]":
    """(completed-per-logical-service, total-faulted) over ``kernels``."""
    invocations: Dict[str, int] = {}
    faulted = 0
    for kernel in kernels:
        for actor in kernel.actors():
            if type(actor).__name__ != "ServiceWrapperRuntime":
                continue
            name = actor.service.name
            logical = logical_of.get(name)
            if logical is None:
                continue
            invocations[logical] = (
                invocations.get(logical, 0) + actor.completed
            )
            faulted += actor.faulted
    return invocations, faulted


def _run_requests(
    platform: Platform,
    deployment: Any,
    scenario: GeneratedScenario,
    runtime: str,
    kernels: "List[Any]",
    deadline_ms: Optional[float],
) -> ScenarioRun:
    session = platform.session("diff-user", "diff-client")
    start = platform.now_ms()
    handles = [
        session.submit(deployment, "run", dict(request),
                       deadline_ms=deadline_ms)
        for request in scenario.requests
    ]
    platform.wait_for(lambda: all(h.done() for h in handles),
                      timeout_ms=None)
    makespan = platform.now_ms() - start

    statuses: List[str] = []
    outputs: List[Dict[str, Any]] = []
    lost = 0
    for handle in handles:
        result = handle.peek()
        if result is None:
            lost += 1
            statuses.append("lost")
            outputs.append({})
            continue
        statuses.append(result.status)
        outputs.append(dict(result.outputs))
    invocations, faulted = _wrapper_counts(kernels, scenario.logical_of())
    return ScenarioRun(
        runtime=runtime,
        statuses=statuses,
        outputs=outputs,
        invocations=invocations,
        faulted=faulted,
        lost=lost,
        makespan_ms=makespan,
    )


def _deploy_slots(platform: Platform,
                  slots: "List[MaterializedSlot]") -> None:
    """Deploy every slot on the classic platform (one host per provider)."""
    for slot in slots:
        for service in slot.services:
            platform.register_elementary(
                service, f"{service.name}-host", publish=False,
            )
        if slot.community is not None:
            platform.register_community(
                slot.community, f"{slot.spec.logical}-chost", publish=False,
            )


def _platform_config(seed: int, perf: "Optional[PerfConfig]",
                     **extra: Any) -> PlatformConfig:
    if perf is not None:
        extra["perf"] = perf
    return PlatformConfig(seed=seed, **extra)


def run_classic(
    scenario: GeneratedScenario,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    perf: "Optional[PerfConfig]" = None,
) -> ScenarioRun:
    """The scenario on the classic platform (P2P coordinators)."""
    platform = Platform(_platform_config(seed, perf, trace=False))
    _deploy_slots(platform, scenario.materialize())
    deployment = platform.deploy_composite(
        scenario_composite(scenario), "composite-host", publish=False,
    )
    return _run_requests(platform, deployment, scenario, "classic",
                         [platform.kernel], deadline_ms)


def run_central(
    scenario: GeneratedScenario,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    perf: "Optional[PerfConfig]" = None,
) -> ScenarioRun:
    """The scenario under the centralised orchestrator baseline.

    The service substrate (providers, communities) is identical to the
    classic run; only the coordination layer differs.
    """
    platform = Platform(_platform_config(seed, perf, trace=False))
    _deploy_slots(platform, scenario.materialize())
    deployment = deploy_central(
        scenario_composite(scenario),
        "central-host",
        platform.transport,
        platform.directory,
        registry=platform.config.registry,
        kernel=platform.kernel,
    )
    return _run_requests(platform, deployment, scenario, "central",
                         [platform.kernel], deadline_ms)


def run_fleet(
    scenario: GeneratedScenario,
    seed: int = 0,
    shards: int = 2,
    deadline_ms: Optional[float] = None,
    perf: "Optional[PerfConfig]" = None,
) -> ScenarioRun:
    """The scenario on a sharded fleet (composition co-located by shard)."""
    platform = Platform(_platform_config(
        seed, perf, fleet=FleetConfig(shards=shards, parallel=False),
    ))
    affinity = scenario.composite_name
    for slot in scenario.materialize():
        for service in slot.services:
            platform.fleet.deployer.deploy_elementary(
                service, f"{service.name}-host", affinity=affinity,
            )
        if slot.community is not None:
            platform.fleet.deployer.deploy_community(
                slot.community, f"{slot.spec.logical}-chost",
                policy=platform.config.default_selection_policy,
                timeout_ms=platform.config.community_timeout_ms,
                affinity=affinity,
            )
    deployment = platform.fleet.deployer.deploy_composite(
        scenario_composite(scenario), "composite-host",
    )
    kernels = [shard.kernel for shard in platform.fleet.shards]
    return _run_requests(platform, deployment, scenario, "fleet",
                         kernels, deadline_ms)


@dataclass
class DifferentialReport:
    """Agreement (or not) of the three runtimes on one scenario."""

    scenario: GeneratedScenario
    runs: "Dict[str, ScenarioRun]"
    mismatches: "List[str]" = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.equivalent:
            return (
                f"seed {self.scenario.seed}: {len(RUNTIMES)} runtimes "
                f"agree on {len(self.scenario.requests)} request(s)"
            )
        return f"seed {self.scenario.seed}: " + "; ".join(self.mismatches)


def _compare(reference: ScenarioRun, other: ScenarioRun,
             mismatches: "List[str]") -> None:
    pair = f"{reference.runtime} vs {other.runtime}"
    if reference.statuses != other.statuses:
        mismatches.append(
            f"{pair}: statuses {reference.statuses} != {other.statuses}"
        )
    if reference.outputs != other.outputs:
        for index, (a, b) in enumerate(
            zip(reference.outputs, other.outputs)
        ):
            if a != b:
                mismatches.append(
                    f"{pair}: request {index} outputs differ: "
                    f"{a!r} != {b!r}"
                )
                break
    if reference.invocations != other.invocations:
        mismatches.append(
            f"{pair}: invocation counts {reference.invocations} != "
            f"{other.invocations}"
        )


def differential(
    scenario: GeneratedScenario,
    seed: int = 0,
    shards: int = 2,
    perf: "Optional[PerfConfig]" = None,
) -> DifferentialReport:
    """Run one scenario through every runtime and compare the outcomes.

    Invariants checked per run (independent of cross-runtime equality):

    * **no lost executions** — every submitted request produced a
      result (success or fault; silence is the bug),
    * **conserved accounting** — result count equals request count.

    Cross-runtime equivalence: statuses, outputs and per-logical-service
    invocation counts must agree pairwise against the classic run.

    ``perf`` overrides the fast-path configuration on *all three*
    platforms — the zero-copy/batching knobs must never change what a
    composition computes, only how fast the kernel moves it.
    """
    runs = {
        "classic": run_classic(scenario, seed=seed, perf=perf),
        "central": run_central(scenario, seed=seed, perf=perf),
        "fleet": run_fleet(scenario, seed=seed, shards=shards, perf=perf),
    }
    mismatches: List[str] = []
    for name, run in runs.items():
        if run.lost:
            mismatches.append(f"{name}: {run.lost} lost execution(s)")
        produced = len(run.statuses)
        if produced != len(scenario.requests):
            mismatches.append(
                f"{name}: {produced} results for "
                f"{len(scenario.requests)} requests"
            )
    reference = runs["classic"]
    for name in ("central", "fleet"):
        _compare(reference, runs[name], mismatches)
    return DifferentialReport(
        scenario=scenario, runs=runs, mismatches=mismatches,
    )
