"""Scenario corpus: generated topologies, tenants, differential suite.

The test surface for "handles as many scenarios as you can imagine":

* :mod:`repro.scenarios.generator` — seed-deterministic random
  composition topologies (depth, fan-out, join density, community
  sizes, fault mix) drawn from :mod:`repro.sim.random_streams`,
* :mod:`repro.scenarios.differential` — every generated scenario runs
  through the classic platform, the central baseline and the fleet
  runtime, and the three must agree,
* :mod:`repro.scenarios.tenants` — multi-tenant SLA workloads
  (priority tiers, rate limits, quotas) whose targets drive the
  selection/hedging policies,
* :mod:`repro.scenarios.library` — the curated named scenarios
  (flash-sale, noisy-neighbor, marketplace-churn) behind
  ``BENCH_SCENARIOS.json``.
"""

from repro.scenarios.differential import (
    RUNTIMES,
    DifferentialReport,
    ScenarioRun,
    differential,
    run_central,
    run_classic,
    run_fleet,
    scenario_composite,
)
from repro.scenarios.generator import (
    GeneratedScenario,
    MemberSpec,
    ScenarioParams,
    SlotSpec,
    generate_scenario,
    scenario_corpus,
    scenario_prefix,
)
from repro.scenarios.library import (
    LIBRARY,
    ChurnEvent,
    LibraryReport,
    LibraryScenario,
    flash_sale,
    library_scenario,
    marketplace_churn,
    noisy_neighbor,
    run_library_scenario,
)
from repro.scenarios.tenants import (
    TIERS,
    SlaLedger,
    SlaTarget,
    TenantGovernor,
    TenantSpec,
    TokenBucket,
    resilience_for,
    selection_policy_for,
)

__all__ = [
    "RUNTIMES",
    "TIERS",
    "LIBRARY",
    "ChurnEvent",
    "DifferentialReport",
    "GeneratedScenario",
    "LibraryReport",
    "LibraryScenario",
    "MemberSpec",
    "ScenarioParams",
    "ScenarioRun",
    "SlaLedger",
    "SlaTarget",
    "SlotSpec",
    "TenantGovernor",
    "TenantSpec",
    "TokenBucket",
    "differential",
    "flash_sale",
    "generate_scenario",
    "library_scenario",
    "marketplace_churn",
    "noisy_neighbor",
    "resilience_for",
    "run_central",
    "run_classic",
    "run_fleet",
    "run_library_scenario",
    "scenario_composite",
    "scenario_corpus",
    "scenario_prefix",
    "selection_policy_for",
]
