"""Multi-tenant SLA workloads: priority classes, quotas, rate limits.

One platform, many tenants: each :class:`TenantSpec` names a priority
tier, an open-loop arrival process (:mod:`repro.workload.arrivals`), a
token-bucket rate limit, an admission quota and an :class:`SlaTarget`.
The :class:`TenantGovernor` admits or throttles every arrival on the
simulated clock, and the :class:`SlaLedger` accounts for every admitted
request — with a conservation invariant (``offered == admitted +
throttled + rejected`` and ``admitted == completed + pending``) that the
scenario suite checks after every run: traffic can be shed, but it can
never silently vanish.

SLA targets *feed the execution policies*: :func:`selection_policy_for`
maps a tenant tier to the community selection policy its requests
deserve (premium rides the resilience layer's ``health-weighted``
ranking), and :func:`resilience_for` derives a hedging policy from the
tightest premium latency target, so the PR 2 hedge/selection machinery
is driven by declared SLAs instead of hand-tuned constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.config import ResilienceConfig
from repro.resilience.hedge import HedgePolicy
from repro.resilience.retry import RetryPolicy
from repro.workload.arrivals import ArrivalProcess

#: Priority tiers, best-served first.
TIERS = ("premium", "standard", "batch")


@dataclass(frozen=True)
class SlaTarget:
    """A tenant's latency objective.

    ``latency_ms`` is the per-request response-time bound (arrival to
    result, open-loop) and ``attainment`` the fraction of completed
    requests that must meet it for the SLA to count as met.
    """

    latency_ms: float
    attainment: float = 0.95

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be > 0")
        if not 0.0 < self.attainment <= 1.0:
            raise ValueError("attainment must be in (0, 1]")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract."""

    name: str
    arrivals: ArrivalProcess
    sla: SlaTarget
    tier: str = "standard"
    #: Token-bucket refill rate; ``None`` = unlimited.
    rate_limit_rps: Optional[float] = None
    #: Token-bucket capacity (burst tolerance).
    burst: int = 8
    #: Hard cap on admitted requests per run; ``None`` = unlimited.
    quota: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(
                f"tier must be one of {TIERS}, got {self.tier!r}"
            )
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError("rate_limit_rps must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.quota is not None and self.quota < 0:
            raise ValueError("quota must be >= 0")


class TokenBucket:
    """A continuous-refill token bucket on the simulated clock."""

    def __init__(self, rate_per_s: float, burst: int) -> None:
        self.rate_per_ms = rate_per_s / 1000.0
        self.capacity = float(burst)
        self.tokens = float(burst)
        self._last_ms = 0.0

    def allow(self, now_ms: float) -> bool:
        elapsed = max(0.0, now_ms - self._last_ms)
        self._last_ms = now_ms
        self.tokens = min(
            self.capacity, self.tokens + elapsed * self.rate_per_ms
        )
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class TenantCounters:
    """Admission accounting of one tenant (the conservation ledger)."""

    offered: int = 0
    admitted: int = 0
    throttled: int = 0   # shed by the rate limiter
    rejected: int = 0    # shed by the quota

    def conserved(self) -> bool:
        return self.offered == self.admitted + self.throttled + self.rejected


class TenantGovernor:
    """Admission control: per-tenant token buckets and quotas."""

    def __init__(self, tenants: "List[TenantSpec]") -> None:
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names!r}")
        self.tenants: "Dict[str, TenantSpec]" = {t.name: t for t in tenants}
        self.counters: "Dict[str, TenantCounters]" = {
            t.name: TenantCounters() for t in tenants
        }
        self._buckets: "Dict[str, TokenBucket]" = {
            t.name: TokenBucket(t.rate_limit_rps, t.burst)
            for t in tenants if t.rate_limit_rps is not None
        }

    def admit(self, tenant: str, now_ms: float) -> bool:
        """Admit or shed one arrival of ``tenant`` at ``now_ms``."""
        spec = self.tenants.get(tenant)
        if spec is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        counters = self.counters[tenant]
        counters.offered += 1
        if spec.quota is not None and counters.admitted >= spec.quota:
            counters.rejected += 1
            return False
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.allow(now_ms):
            counters.throttled += 1
            return False
        counters.admitted += 1
        return True

    def conserved(self) -> bool:
        """Every tenant's admission accounting sums up exactly."""
        return all(c.conserved() for c in self.counters.values())


@dataclass
class TenantAccount:
    """Outcome accounting of one tenant's admitted requests."""

    completed_ok: int = 0
    completed_fault: int = 0
    lost: int = 0
    latencies_ms: "List[float]" = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.completed_ok + self.completed_fault

    def p99_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[index]

    def attainment(self, target: SlaTarget) -> float:
        """Fraction of completed requests inside the latency bound."""
        if not self.latencies_ms:
            return 1.0
        met = sum(
            1 for latency in self.latencies_ms
            if latency <= target.latency_ms
        )
        return met / len(self.latencies_ms)


class SlaLedger:
    """Per-tenant SLA accounting over one run."""

    def __init__(self, governor: TenantGovernor) -> None:
        self.governor = governor
        self.accounts: "Dict[str, TenantAccount]" = {
            name: TenantAccount() for name in governor.tenants
        }

    def record(self, tenant: str, ok: bool, latency_ms: float) -> None:
        account = self.accounts[tenant]
        if ok:
            account.completed_ok += 1
            account.latencies_ms.append(latency_ms)
        else:
            account.completed_fault += 1

    def record_lost(self, tenant: str) -> None:
        self.accounts[tenant].lost += 1

    def sla_met(self, tenant: str) -> bool:
        spec = self.governor.tenants[tenant]
        return (
            self.accounts[tenant].attainment(spec.sla) >= spec.sla.attainment
        )

    def check_sums(self) -> "List[str]":
        """Every conservation violation (empty = accounting is exact).

        ``offered == admitted + throttled + rejected`` per tenant, and
        every admitted request is accounted for as completed or lost.
        """
        problems: List[str] = []
        for name, counters in self.governor.counters.items():
            if not counters.conserved():
                problems.append(
                    f"{name}: offered {counters.offered} != admitted "
                    f"{counters.admitted} + throttled {counters.throttled} "
                    f"+ rejected {counters.rejected}"
                )
            account = self.accounts[name]
            if counters.admitted != account.completed + account.lost:
                problems.append(
                    f"{name}: admitted {counters.admitted} != completed "
                    f"{account.completed} + lost {account.lost}"
                )
            if account.lost:
                problems.append(f"{name}: {account.lost} lost execution(s)")
        return problems

    def row(self, tenant: str) -> "Dict[str, object]":
        """Flat per-tenant summary for tables and ledgers."""
        spec = self.governor.tenants[tenant]
        counters = self.governor.counters[tenant]
        account = self.accounts[tenant]
        return {
            "tenant": tenant,
            "tier": spec.tier,
            "offered": counters.offered,
            "admitted": counters.admitted,
            "throttled": counters.throttled,
            "rejected": counters.rejected,
            "ok": account.completed_ok,
            "fault": account.completed_fault,
            "p99_ms": round(account.p99_ms(), 2),
            "attainment": round(account.attainment(spec.sla), 4),
            "sla_met": self.sla_met(tenant),
        }


def selection_policy_for(tier: str) -> str:
    """The community selection policy a tenant tier's traffic deserves.

    Premium traffic rides the resilience layer's ``health-weighted``
    ranking (live health status + EWMA latency); standard keeps the
    paper's multi-attribute QoS scoring; batch spreads round-robin.
    """
    if tier == "premium":
        return "health-weighted"
    if tier == "batch":
        return "round-robin"
    return "multi-attribute"


def resilience_for(tenants: "List[TenantSpec]") -> ResilienceConfig:
    """A resilience config derived from the declared SLA targets.

    The hedge delay comes from the tightest premium latency target:
    fire the speculative duplicate once half the latency budget is
    spent (floored at 1 ms), instead of a hand-tuned constant.  Without
    premium tenants, hedging stays off and the defaults (health +
    breakers + retry) stand.
    """
    premium = [t.sla.latency_ms for t in tenants if t.tier == "premium"]
    if not premium:
        return ResilienceConfig()
    budget = min(premium)
    return ResilienceConfig(
        retry=RetryPolicy(),
        hedge=HedgePolicy(
            delay_percentile=0.95,
            min_delay_ms=max(1.0, budget / 2.0),
        ),
    )
