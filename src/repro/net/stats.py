"""Traffic statistics collected by transports.

These counters are the measurement substrate for the paper's claims about
decentralised execution: message counts and byte volumes per node show how
coordination load concentrates on a central orchestrator versus spreading
across peers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net.message import Message


@dataclass
class TrafficStats:
    """Counters over all messages a transport has carried."""

    sent_total: int = 0
    delivered_total: int = 0
    dropped_total: int = 0
    local_total: int = 0
    remote_total: int = 0
    bytes_total: int = 0
    #: Coalesced delivery events (``repro.perf`` batching): one flush
    #: hands a whole window's messages to a host in a single arrival.
    batch_flushes: int = 0
    #: Messages that arrived inside those flushes.
    batched_messages: int = 0
    sent_by_node: Counter = field(default_factory=Counter)
    received_by_node: Counter = field(default_factory=Counter)
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    by_pair: Counter = field(default_factory=Counter)

    def record_sent(self, message: Message) -> None:
        self.sent_total += 1
        size = message.size_bytes()
        self.bytes_total += size
        self.sent_by_node[message.source] += 1
        self.by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += size
        self.by_pair[(message.source, message.target)] += 1
        if message.is_local:
            self.local_total += 1
        else:
            self.remote_total += 1

    def record_delivered(self, message: Message) -> None:
        self.delivered_total += 1
        self.received_by_node[message.target] += 1

    def record_dropped(self, message: Message) -> None:
        self.dropped_total += 1

    def record_batch_flush(self, message_count: int) -> None:
        """One coalesced delivery event carrying ``message_count`` messages."""
        self.batch_flushes += 1
        self.batched_messages += message_count

    # Analysis helpers ------------------------------------------------------

    def batch_efficiency(self) -> float:
        """Mean messages per coalesced flush (0.0 when nothing batched).

        The headline batching number: how many per-message arrival
        events each delivery window saved.
        """
        if self.batch_flushes == 0:
            return 0.0
        return self.batched_messages / self.batch_flushes

    def wire_arrivals(self) -> int:
        """Physical arrival events: flushes plus unbatched deliveries.

        Without batching this equals :attr:`delivered_total`; with a
        coalescing window it is what the per-execution "message count"
        of CLAIM-FASTPATH measures — how many times a host was actually
        woken by the network.
        """
        return self.batch_flushes + max(
            0, self.delivered_total - self.batched_messages
        )

    def node_load(self, node_id: str) -> int:
        """Messages touching ``node_id`` (sent + received)."""
        return self.sent_by_node[node_id] + self.received_by_node[node_id]

    def peak_node_load(self) -> "Tuple[str, int]":
        """The busiest node and its message count.

        This is the headline number of the scalability claim: centralised
        orchestration concentrates nearly all traffic on one host.
        """
        nodes = set(self.sent_by_node) | set(self.received_by_node)
        if not nodes:
            return ("", 0)
        busiest = max(nodes, key=self.node_load)
        return busiest, self.node_load(busiest)

    def load_by_node(self) -> "Dict[str, int]":
        nodes = set(self.sent_by_node) | set(self.received_by_node)
        return {n: self.node_load(n) for n in sorted(nodes)}

    def load_concentration(self) -> float:
        """Fraction of total message load carried by the busiest node.

        1.0 means one node touches every message (perfectly centralised);
        1/N means perfectly even spread over N nodes.
        """
        loads = self.load_by_node()
        total = sum(loads.values())
        if total == 0:
            return 0.0
        return max(loads.values()) / total

    def top_nodes(self, count: int = 5) -> "List[Tuple[str, int]]":
        loads = self.load_by_node()
        ranked = sorted(loads.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]

    # Windowing --------------------------------------------------------------

    def snapshot(self) -> "TrafficStats":
        """An immutable-by-convention copy of every counter, taken now.

        Pair with :meth:`diff` to window a monotonically growing stats
        object over one experiment phase or health-sampling interval
        without hand-copying dicts::

            before = transport.stats.snapshot()
            ...  # run the phase
            window = transport.stats.diff(before)
        """
        return TrafficStats(
            sent_total=self.sent_total,
            delivered_total=self.delivered_total,
            dropped_total=self.dropped_total,
            local_total=self.local_total,
            remote_total=self.remote_total,
            bytes_total=self.bytes_total,
            batch_flushes=self.batch_flushes,
            batched_messages=self.batched_messages,
            sent_by_node=Counter(self.sent_by_node),
            received_by_node=Counter(self.received_by_node),
            by_kind=Counter(self.by_kind),
            bytes_by_kind=Counter(self.bytes_by_kind),
            by_pair=Counter(self.by_pair),
        )

    def diff(self, since: "TrafficStats") -> "TrafficStats":
        """Counters accumulated since an earlier :meth:`snapshot`.

        Counter entries that did not change are dropped from the per-key
        counters (``Counter`` subtraction keeps positives only), which is
        exactly the "what happened in this window" view callers want.
        """
        return TrafficStats(
            sent_total=self.sent_total - since.sent_total,
            delivered_total=self.delivered_total - since.delivered_total,
            dropped_total=self.dropped_total - since.dropped_total,
            local_total=self.local_total - since.local_total,
            remote_total=self.remote_total - since.remote_total,
            bytes_total=self.bytes_total - since.bytes_total,
            batch_flushes=self.batch_flushes - since.batch_flushes,
            batched_messages=(self.batched_messages
                              - since.batched_messages),
            sent_by_node=self.sent_by_node - since.sent_by_node,
            received_by_node=self.received_by_node - since.received_by_node,
            by_kind=self.by_kind - since.by_kind,
            bytes_by_kind=self.bytes_by_kind - since.bytes_by_kind,
            by_pair=self.by_pair - since.by_pair,
        )

    def reset(self) -> None:
        """Zero every counter (between benchmark repetitions)."""
        self.sent_total = 0
        self.delivered_total = 0
        self.dropped_total = 0
        self.local_total = 0
        self.remote_total = 0
        self.bytes_total = 0
        self.batch_flushes = 0
        self.batched_messages = 0
        self.sent_by_node.clear()
        self.received_by_node.clear()
        self.by_kind.clear()
        self.bytes_by_kind.clear()
        self.by_pair.clear()
