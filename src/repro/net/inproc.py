"""Threaded in-process transport: real concurrency, real clock.

Each node gets a dispatcher thread draining a queue, mirroring the
original platform's one-socket-listener-per-host design.  Latency can be
emulated with real sleeps via ``latency_scale`` (disabled by default so
the functional tests run fast); timers run on ``threading.Timer``.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import TransportError
from repro.net.message import Message
from repro.net.node import Node
from repro.net.transport import Transport

_SHUTDOWN = object()


class InProcTransport(Transport):
    """Transport backed by one dispatcher thread per node.

    Handlers on different nodes run concurrently, so shared consumers
    must synchronise (``concurrent_delivery`` is True here).

    ``batch_max`` (> 1) enables queue-drain batching (``repro.perf``):
    a dispatcher wakeup drains up to that many already-queued messages
    in one go instead of paying one condition-variable wakeup per
    message — the threaded analogue of the simulated transport's
    coalesced delivery windows, with zero added latency (only messages
    that are *already* waiting are drained).
    """

    concurrent_delivery = True

    def __init__(
        self, latency_scale: float = 0.0, batch_max: int = 1
    ) -> None:
        super().__init__()
        if latency_scale < 0:
            raise ValueError("latency_scale must be >= 0")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.latency_scale = latency_scale
        self.batch_max = batch_max
        self._queues: Dict[str, "queue.Queue"] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._timers: "list[threading.Timer]" = []
        self._lock = threading.Lock()
        self._started = False
        self._epoch = time.monotonic()

    # Lifecycle ----------------------------------------------------------------

    def add_node(self, node_id: str) -> Node:
        node = super().add_node(node_id)
        self._queues[node_id] = queue.Queue()
        if self._started:
            self._start_node(node_id)
        return node

    def start(self) -> None:
        """Start dispatcher threads for all registered nodes."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for node_id in self.node_ids():
                self._start_node(node_id)

    def _start_node(self, node_id: str) -> None:
        thread = threading.Thread(
            target=self._dispatch_loop,
            args=(node_id,),
            name=f"node-{node_id}",
            daemon=True,
        )
        self._threads[node_id] = thread
        thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop all dispatcher threads and cancel pending timers."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()
            for node_id, q in self._queues.items():
                q.put(_SHUTDOWN)
        for thread in self._threads.values():
            thread.join(timeout=timeout)
        self._threads.clear()

    def __enter__(self) -> "InProcTransport":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # Core operations ------------------------------------------------------------

    def _dispatch_loop(self, node_id: str) -> None:
        q = self._queues[node_id]
        while True:
            item = q.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            shutdown = False
            while len(batch) < self.batch_max:
                try:
                    extra = q.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(extra)
            if len(batch) > 1:
                self.stats.record_batch_flush(len(batch))
            for message in batch:
                try:
                    self._deliver_now(message)
                except Exception:  # noqa: BLE001 - a handler bug must not
                    # kill the dispatcher; errors surface as timeouts at
                    # the caller, as they would with a crashed socket
                    # handler.
                    self.stats.record_dropped(message)
            if shutdown:
                return

    def send(self, message: Message) -> None:
        if not self._started:
            raise TransportError(
                "InProcTransport.send called before start(); use it as a "
                "context manager or call start()"
            )
        if not self._precheck_send(message):
            return
        if self.latency_scale > 0 and not message.is_local:
            delay = 0.001 * self.latency_scale
            timer = threading.Timer(
                delay, self._queues[message.target].put, args=(message,)
            )
            timer.daemon = True
            with self._lock:
                self._timers.append(timer)
            timer.start()
        else:
            self._queues[message.target].put(message)

    def schedule(
        self, node_id: str, delay_ms: float, callback: Callable[[], None]
    ) -> Callable[[], None]:
        node = self.node(node_id)

        def fire() -> None:
            if node.up and self._started:
                # Run on the node's dispatcher thread to keep the
                # single-threaded-per-node execution model.
                self._queues[node_id].put(_TimerMessage(node_id, callback))

        timer = threading.Timer(max(0.0, delay_ms) / 1000.0, fire)
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()
        return timer.cancel

    def now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def wait_for(
        self, predicate: Callable[[], bool], timeout_ms: Optional[float] = None
    ) -> bool:
        deadline = (
            None if timeout_ms is None
            else time.monotonic() + timeout_ms / 1000.0
        )
        while not predicate():
            if deadline is not None and time.monotonic() >= deadline:
                return predicate()
            time.sleep(0.001)
        return True

    def _deliver_now(self, message: Message) -> None:
        if isinstance(message, _TimerMessage):
            message.callback()
            return
        super()._deliver_now(message)


class _TimerMessage(Message):
    """Internal: a timer callback routed through the node's queue."""

    __slots__ = ("callback",)

    def __init__(self, node_id: str, callback: Callable[[], None]) -> None:
        super().__init__(
            kind="__timer__",
            source=node_id,
            source_endpoint="__timer__",
            target=node_id,
            target_endpoint="__timer__",
        )
        self.callback = callback
