"""Messaging substrate.

The original platform exchanged XML documents over Java sockets between
provider hosts.  Here a *node* models one provider host; it exposes named
*endpoints* (wrappers and coordinators register themselves as endpoints).
A *transport* carries :class:`Message` objects between endpoints:

* :class:`~repro.net.simnet.SimTransport` — runs on the discrete-event
  simulator with configurable latency models, message loss and host
  failure injection.  Deterministic; used by all benchmarks.
* :class:`~repro.net.inproc.InProcTransport` — real threads and queues,
  one dispatcher thread per node.  Exercises the same runtime code with
  genuine concurrency; used by concurrency tests.

Both collect :class:`TrafficStats`, the raw material of the paper's
message-load claims, and both support delivery batching (``repro.perf``):
coalesced delivery windows on the simulated transport
(``batch_window_ms``), queue-drain batching on the threaded one
(``batch_max``), measured by ``stats.batch_efficiency()`` and
``stats.wire_arrivals()``.
"""

from repro.net.latency import (
    FixedLatency,
    LatencyModel,
    UniformLatency,
    ZoneLatency,
)
from repro.net.message import Message
from repro.net.node import Endpoint, Node
from repro.net.stats import TrafficStats
from repro.net.transport import Transport
from repro.net.simnet import SimTransport
from repro.net.inproc import InProcTransport

__all__ = [
    "Endpoint",
    "FixedLatency",
    "InProcTransport",
    "LatencyModel",
    "Message",
    "Node",
    "SimTransport",
    "TrafficStats",
    "Transport",
    "UniformLatency",
    "ZoneLatency",
]
