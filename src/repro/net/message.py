"""The message model.

Every inter-component interaction — execute requests, peer notifications,
service invocations, results — is a :class:`Message` addressed to an
``(node, endpoint)`` pair.  The body is a plain mapping; the transport
measures its size by serialising it to XML, the same representation the
original platform put on the wire (sizes feed the traffic statistics).

Hot-path notes (``repro.perf``): the class is a hand-rolled
``__slots__`` type rather than a dataclass — messages are minted on
every send and the generated dataclass machinery showed up in kernel
profiles.  The body may be carried *lazily*: the kernel's zero-copy
path attaches the typed envelope instead of an encoded dict, and
``message.body`` materialises the dict on first touch (so observers,
durability logging and tests still see the exact wire encoding).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Mapping, Optional

_message_ids = itertools.count(1)


def _estimate_size_slow(value: Any) -> int:
    """Generic path for subclasses / exotic types (original semantics)."""
    if value is None:
        return 8
    if isinstance(value, bool):
        return 13  # <v>false</v>
    if isinstance(value, (int, float)):
        return 7 + len(str(value))
    if isinstance(value, str):
        return 7 + len(value)
    if isinstance(value, Mapping):
        return 7 + sum(
            len(str(k)) + _estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set)):
        return 7 + sum(_estimate_size(v) for v in value)
    return 7 + len(repr(value))


def _estimate_size(value: Any) -> int:
    """Rough XML-encoded size in bytes of a message body value.

    Exact-type dispatch first: ``isinstance`` against the ``Mapping``
    ABC walks the registry and dominated the per-send cost.  Subclasses
    and ABC-registered types fall through to the generic path, so the
    returned sizes are byte-identical to the original implementation.
    """
    t = value.__class__
    if t is str:
        return 7 + len(value)
    if t is dict:
        return 7 + sum(
            len(k) + _estimate_size(v) if k.__class__ is str
            else len(str(k)) + _estimate_size(v)
            for k, v in value.items()
        )
    if t is int or t is float:
        return 7 + len(str(value))
    if t is bool:
        return 13
    if t is list or t is tuple:
        return 7 + sum(_estimate_size(v) for v in value)
    return _estimate_size_slow(value)


class Message:
    """One message in flight.

    * ``kind`` — protocol verb (``execute``, ``notify``, ``invoke``, …),
    * ``source``/``target`` — node ids,
    * ``source_endpoint``/``target_endpoint`` — endpoint names,
    * ``body`` — payload mapping (already-validated protocol fields),
    * ``message_id`` — unique id, assigned at construction,
    * ``envelope`` — optional typed envelope riding along on the
      kernel's zero-copy in-proc path; when set and ``body`` was not
      given, the body dict is derived from it on first access.
    """

    __slots__ = (
        "kind",
        "source",
        "source_endpoint",
        "target",
        "target_endpoint",
        "message_id",
        "envelope",
        "_body",
    )

    def __init__(
        self,
        kind: str,
        source: str,
        source_endpoint: str,
        target: str,
        target_endpoint: str,
        body: Optional[Dict[str, Any]] = None,
        message_id: Optional[int] = None,
        envelope: Any = None,
    ) -> None:
        self.kind = kind
        self.source = source
        self.source_endpoint = source_endpoint
        self.target = target
        self.target_endpoint = target_endpoint
        self._body = body
        self.envelope = envelope
        self.message_id = (
            next(_message_ids) if message_id is None else message_id
        )

    @property
    def body(self) -> Dict[str, Any]:
        """The payload mapping; materialised from ``envelope`` if lazy."""
        body = self._body
        if body is None:
            envelope = self.envelope
            body = {} if envelope is None else envelope.to_body()
            self._body = body
        return body

    @body.setter
    def body(self, value: Dict[str, Any]) -> None:
        self._body = value

    @property
    def body_materialised(self) -> bool:
        """Whether the encoded dict exists yet (diagnostics/benchmarks)."""
        return self._body is not None

    @property
    def is_local(self) -> bool:
        """True when source and target live on the same node.

        Local messages model in-host calls (e.g. a coordinator invoking
        the wrapper installed next to it); benchmarks report them apart
        from remote traffic because they never cross the network.
        """
        return self.source == self.target

    def size_bytes(self) -> int:
        """Estimated on-the-wire size (XML encoding).

        A lazy envelope answers without encoding: the generated
        ``_wire_size`` computes the same number ``_estimate_size`` would
        produce for the encoded dict.
        """
        envelope = 96  # headers: kind, addressing, id
        if self._body is None and self.envelope is not None:
            return envelope + self.envelope._wire_size()
        return envelope + _estimate_size(self.body)

    def reply_address(self) -> "tuple[str, str]":
        """The ``(node, endpoint)`` to answer to."""
        return self.source, self.source_endpoint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.kind!r}, {self.source}:{self.source_endpoint} -> "
            f"{self.target}:{self.target_endpoint}, id={self.message_id})"
        )
