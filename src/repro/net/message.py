"""The message model.

Every inter-component interaction — execute requests, peer notifications,
service invocations, results — is a :class:`Message` addressed to an
``(node, endpoint)`` pair.  The body is a plain mapping; the transport
measures its size by serialising it to XML, the same representation the
original platform put on the wire (sizes feed the traffic statistics).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

_message_ids = itertools.count(1)


def _estimate_size(value: Any) -> int:
    """Rough XML-encoded size in bytes of a message body value."""
    if value is None:
        return 8
    if isinstance(value, bool):
        return 13  # <v>false</v>
    if isinstance(value, (int, float)):
        return 7 + len(str(value))
    if isinstance(value, str):
        return 7 + len(value)
    if isinstance(value, Mapping):
        return 7 + sum(
            len(str(k)) + _estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set)):
        return 7 + sum(_estimate_size(v) for v in value)
    return 7 + len(repr(value))


@dataclass
class Message:
    """One message in flight.

    * ``kind`` — protocol verb (``execute``, ``notify``, ``invoke``, …),
    * ``source``/``target`` — node ids,
    * ``source_endpoint``/``target_endpoint`` — endpoint names,
    * ``body`` — payload mapping (already-validated protocol fields),
    * ``message_id`` — unique id, assigned at construction.
    """

    kind: str
    source: str
    source_endpoint: str
    target: str
    target_endpoint: str
    body: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def is_local(self) -> bool:
        """True when source and target live on the same node.

        Local messages model in-host calls (e.g. a coordinator invoking
        the wrapper installed next to it); benchmarks report them apart
        from remote traffic because they never cross the network.
        """
        return self.source == self.target

    def size_bytes(self) -> int:
        """Estimated on-the-wire size (XML encoding)."""
        envelope = 96  # headers: kind, addressing, id
        return envelope + _estimate_size(self.body)

    def reply_address(self) -> "tuple[str, str]":
        """The ``(node, endpoint)`` to answer to."""
        return self.source, self.source_endpoint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.kind!r}, {self.source}:{self.source_endpoint} -> "
            f"{self.target}:{self.target_endpoint}, id={self.message_id})"
        )
