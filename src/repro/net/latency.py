"""Network latency models for the simulated transport."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


class LatencyModel:
    """Strategy interface: latency of one message between two nodes."""

    def sample_ms(
        self, source: str, target: str, rng: random.Random
    ) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant latency between any two distinct nodes.

    ``local_ms`` applies when source == target (in-host call), modelling
    loopback versus LAN cost.
    """

    remote_ms: float = 5.0
    local_ms: float = 0.05

    def sample_ms(self, source: str, target: str, rng: random.Random) -> float:
        return self.local_ms if source == target else self.remote_ms


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniformly jittered latency in ``[low_ms, high_ms]``."""

    low_ms: float = 2.0
    high_ms: float = 10.0
    local_ms: float = 0.05

    def sample_ms(self, source: str, target: str, rng: random.Random) -> float:
        if source == target:
            return self.local_ms
        return rng.uniform(self.low_ms, self.high_ms)


@dataclass
class ZoneLatency(LatencyModel):
    """Zone-aware latency: intra-zone is cheap, inter-zone expensive.

    Models the paper's B2B setting where providers are autonomous
    organisations spread across the Internet: a centralised orchestrator
    pays wide-area cost on every hop, while P2P coordinators co-located
    with providers often message within a zone.
    """

    zones: Dict[str, str] = field(default_factory=dict)
    intra_zone_ms: float = 2.0
    inter_zone_ms: float = 25.0
    local_ms: float = 0.05
    jitter_fraction: float = 0.0

    def assign(self, node_id: str, zone: str) -> None:
        self.zones[node_id] = zone

    def sample_ms(self, source: str, target: str, rng: random.Random) -> float:
        if source == target:
            return self.local_ms
        same_zone = (
            self.zones.get(source) is not None
            and self.zones.get(source) == self.zones.get(target)
        )
        base = self.intra_zone_ms if same_zone else self.inter_zone_ms
        if self.jitter_fraction <= 0:
            return base
        spread = base * self.jitter_fraction
        return max(0.0, rng.uniform(base - spread, base + spread))
