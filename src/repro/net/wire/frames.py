"""Length-prefixed, CRC-checked framing for the socket wire.

On-the-wire frame format (all integers big-endian), deliberately the
same shape as the durability WAL's segment records — one framing idiom
across the repo::

    +-------+----------+-----------+-----------------+
    | magic | length   | crc32     | payload         |
    | 2 B   | 4 B      | 4 B       | ``length`` B    |
    +-------+----------+-----------+-----------------+

The stream decoder differs from the segment reader in one essential
way: a file reader *stops* at the first torn record (everything after a
crash is garbage by definition), while a socket reader must treat any
framing violation as evidence the peer — or the network — is feeding it
bytes it cannot realign with, and hand the connection over to be
dropped.  :class:`FrameDecoder` therefore raises
:class:`~repro.exceptions.WireProtocolError` on bad magic, an oversized
length prefix or a CRC mismatch, and refuses further input afterwards;
partial frames (split length prefixes, payloads arriving byte by byte)
are simply buffered until complete.
"""

from __future__ import annotations

import struct
import zlib
from typing import List

from repro.exceptions import WireProtocolError

MAGIC = b"\x57\x46"  # "WF"
_HEADER = struct.Struct(">II")  # (payload length, crc32)
HEADER_SIZE = len(MAGIC) + _HEADER.size  # 10 bytes

#: Ceiling on one frame's payload.  Envelope bodies are small (the
#: whole protocol vocabulary is scalars and shallow maps); a length
#: prefix beyond this is a corrupt or hostile stream, not a big
#: message, and is rejected before any allocation.
DEFAULT_MAX_FRAME_BYTES = 1 << 20


def encode_frame(
    payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """One framed payload, ready to write to a socket."""
    if len(payload) > max_frame_bytes:
        raise WireProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunking.

    ``feed(data)`` accepts whatever the socket produced — half a magic
    byte, a length prefix split across reads, three frames glued
    together — and returns the payloads of every frame completed so
    far.  Any framing violation raises
    :class:`~repro.exceptions.WireProtocolError` and poisons the
    decoder: once the stream has desynchronised there is no honest way
    to find the next frame boundary, so the owning connection must be
    closed.
    """

    __slots__ = ("max_frame_bytes", "_buffer", "_poisoned", "frames_decoded")

    def __init__(
        self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered while waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "List[bytes]":
        """Consume one read's worth of bytes; returns completed payloads."""
        if self._poisoned:
            raise WireProtocolError(
                "frame decoder already failed on this stream; the "
                "connection must be dropped, not fed more bytes"
            )
        self._buffer.extend(data)
        payloads: "List[bytes]" = []
        buffer = self._buffer
        offset = 0
        total = len(buffer)
        try:
            while total - offset >= HEADER_SIZE:
                if buffer[offset:offset + len(MAGIC)] != MAGIC:
                    raise WireProtocolError(
                        f"bad frame magic "
                        f"{bytes(buffer[offset:offset + len(MAGIC)])!r} "
                        f"at stream offset {offset}"
                    )
                length, crc = _HEADER.unpack_from(buffer, offset + len(MAGIC))
                if length > self.max_frame_bytes:
                    raise WireProtocolError(
                        f"frame length prefix {length} exceeds the "
                        f"{self.max_frame_bytes}-byte frame limit"
                    )
                end = offset + HEADER_SIZE + length
                if end > total:
                    break  # split frame: wait for the rest
                payload = bytes(buffer[offset + HEADER_SIZE:end])
                if zlib.crc32(payload) != crc:
                    raise WireProtocolError(
                        f"frame CRC mismatch for {length}-byte payload "
                        f"at stream offset {offset}"
                    )
                payloads.append(payload)
                self.frames_decoded += 1
                offset = end
        except WireProtocolError:
            self._poisoned = True
            raise
        if offset:
            del buffer[:offset]
        return payloads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "poisoned" if self._poisoned else "ok"
        return (
            f"<FrameDecoder {state}, {self.frames_decoded} frames, "
            f"{len(self._buffer)} pending bytes>"
        )
