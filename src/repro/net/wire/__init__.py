"""Real socket transport (``repro.net.wire``).

Everything before this package exchanged kernel envelopes inside one
process — the deterministic simulator or the threaded in-proc queues.
This package puts the same envelopes on real TCP sockets:

* :mod:`~repro.net.wire.frames` — length-prefixed, CRC-checked frame
  boundary (the WAL segment format's idiom applied to a byte stream),
* :mod:`~repro.net.wire.codec` — :class:`~repro.net.message.Message`
  <-> frame payload, with every protocol verb validated through the
  compiled envelope codecs at the boundary,
* :mod:`~repro.net.wire.peers` — asyncio connection manager with
  reconnect/backoff riding the resilience retry schedule,
* :mod:`~repro.net.wire.transport` — :class:`WireTransport`, the
  :class:`~repro.net.transport.Transport` implementation
  (``PlatformConfig(transport="wire")``),
* :mod:`~repro.net.wire.node_runner` — the ``WireNode`` child-process
  entrypoint hosting one shard platform behind a socket ingress.

The process-fleet runtime built on these lives in
:mod:`repro.fleet.wire`.
"""

from repro.net.wire.codec import decode_message, encode_message
from repro.net.wire.frames import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
)
from repro.net.wire.node_runner import (
    WireNodeHandle,
    WireNodeSpec,
    spawn_wire_node,
)
from repro.net.wire.transport import WireTransport

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "WireNodeHandle",
    "WireNodeSpec",
    "WireTransport",
    "decode_message",
    "encode_frame",
    "encode_message",
    "spawn_wire_node",
]
