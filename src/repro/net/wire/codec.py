"""Message <-> frame-payload codec for the socket wire.

A frame payload is a compact JSON object carrying the message header
and the envelope body::

    {"k": kind, "s": source, "se": source_endpoint,
     "t": target, "te": target_endpoint, "i": message_id, "b": body}

The *body* is exactly what the compiled envelope codecs produce:
``encode_message`` serialises ``message.body`` (materialised from a
lazy zero-copy envelope if needed, so the bytes are identical either
way), and ``decode_message`` runs every catalogued protocol verb back
through ``from_body`` **at the boundary** — malformed traffic is
rejected with :class:`~repro.exceptions.WireCodecError` before it can
reach a mailbox, and the validated envelope is attached to the decoded
:class:`~repro.net.message.Message` so the kernel never decodes twice.

Kinds outside the protocol catalogue are accepted only in the ``__``
control namespace (``__wire_ping__``, the in-proc ``__timer__`` idiom):
the process-fleet handshake rides such frames.  Any other uncatalogued
verb is a peer speaking a different protocol and is rejected.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.exceptions import EnvelopeError, WireCodecError
from repro.kernel.envelopes import ENVELOPE_TYPES
from repro.net.message import Message

_HEADER_KEYS = ("k", "s", "se", "t", "te", "i")


def encode_message(message: Message) -> bytes:
    """Serialise one message into a frame payload.

    JSON is the carrier (the repo's XML size model stays the *cost*
    model; actual bytes are JSON like every service bus this decade),
    with ``allow_nan=False`` so a NaN smuggled into an argument map
    fails loudly here instead of decoding as ``null`` on the far side.
    """
    record = {
        "k": message.kind,
        "s": message.source,
        "se": message.source_endpoint,
        "t": message.target,
        "te": message.target_endpoint,
        "i": message.message_id,
        "b": message.body,
    }
    try:
        return json.dumps(
            record, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireCodecError(
            f"message {message.kind!r} "
            f"{message.source}->{message.target} cannot be serialised "
            f"for the wire: {exc}"
        ) from exc


def decode_message(payload: bytes) -> Message:
    """Parse and validate one frame payload back into a message."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireCodecError(
            f"frame payload is not valid JSON: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise WireCodecError(
            f"frame payload must be a JSON object, got "
            f"{type(record).__name__}"
        )
    for key in _HEADER_KEYS:
        if key not in record:
            raise WireCodecError(
                f"frame payload is missing header field {key!r}"
            )
    kind = record["k"]
    body = record.get("b")
    if not isinstance(kind, str) or not kind:
        raise WireCodecError(f"message kind must be a string, got {kind!r}")
    if not isinstance(body, dict):
        raise WireCodecError(
            f"message body must be a JSON object, got "
            f"{type(body).__name__}"
        )
    for key in ("s", "se", "t", "te"):
        if not isinstance(record[key], str) or not record[key]:
            raise WireCodecError(
                f"addressing field {key!r} must be a non-empty string, "
                f"got {record[key]!r}"
            )
    message_id = record["i"]
    if not isinstance(message_id, int) or isinstance(message_id, bool):
        raise WireCodecError(
            f"message id must be an integer, got {message_id!r}"
        )
    envelope = None
    envelope_type = ENVELOPE_TYPES.get(kind)
    if envelope_type is not None:
        try:
            envelope = envelope_type.from_body(body)
        except EnvelopeError as exc:
            raise WireCodecError(
                f"rejected {kind!r} frame from {record['s']!r}: {exc}"
            ) from exc
    elif not (kind.startswith("__") and kind.endswith("__")):
        raise WireCodecError(
            f"unknown wire verb {kind!r} from {record['s']!r} (not in "
            f"the envelope catalogue and not a __control__ kind)"
        )
    return Message(
        kind=kind,
        source=record["s"],
        source_endpoint=record["se"],
        target=record["t"],
        target_endpoint=record["te"],
        body=body,
        message_id=message_id,
        envelope=envelope,
    )


def control_body(**fields: Any) -> "Dict[str, Any]":
    """Convenience for ``__control__``-namespace frame bodies."""
    return dict(fields)
