"""``WireNode`` — the shard child-process entrypoint.

A wire node is one real OS process hosting one shard of a process
fleet: a classic single-shard :class:`~repro.api.platform.Platform`
(deterministic simulated transport inside, so shard-local execution
stays reproducible) fronted by a :class:`~repro.net.wire.WireTransport`
listener.  The parent process (:mod:`repro.fleet.wire`) speaks to it
exclusively over sockets:

* one **ingress endpoint per composite** accepts ``Execute`` envelopes,
  runs them through the shard platform, and answers ``ExecuteResult``
  on the connection the request arrived on (drain windows arrive whole,
  so a burst is submitted as a batch before the shard is pumped);
* one **control endpoint** answers the ``__wire_*__`` verbs — ping,
  stats, snapshot, recovered-result drain, graceful shutdown.

Topology is *spec-determined*: the child rebuilds its composites from
the :class:`WireNodeSpec` alone, which is what makes cross-process
crash recovery honest — a respawned incarnation (``recover=True``)
rebuilds the same topology deterministically, restores the latest
snapshot, replays the shard WAL through the PR 6 replay path, and
reports what it recovered through the spawn pipe.  Only the spec
crosses the process boundary; live objects never do.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import TransportError
from repro.net.message import Message
from repro.net.wire.codec import control_body
from repro.net.wire.frames import DEFAULT_MAX_FRAME_BYTES
from repro.net.wire.transport import WireTransport

#: Endpoint every wire node answers control verbs on.
CONTROL_ENDPOINT = "control"

#: Control-namespace verbs of the parent <-> shard handshake.  They ride
#: the same framed codec as protocol envelopes but live outside the
#: envelope catalogue (the ``__...__`` namespace the codec reserves).
WIRE_PING = "__wire_ping__"
WIRE_PONG = "__wire_pong__"
WIRE_STATS = "__wire_stats__"
WIRE_STATS_REPLY = "__wire_stats_reply__"
WIRE_RESULTS = "__wire_results__"
WIRE_RESULTS_REPLY = "__wire_results_reply__"
WIRE_SNAPSHOT = "__wire_snapshot__"
WIRE_SNAPSHOT_REPLY = "__wire_snapshot_reply__"
WIRE_SHUTDOWN = "__wire_shutdown__"
WIRE_OK = "__wire_ok__"


def wire_node_id(shard_id: int) -> str:
    """The transport node id of shard ``shard_id``'s process."""
    return f"wireshard-{shard_id}"


@dataclass(frozen=True)
class WireNodeSpec:
    """Everything a shard process needs to build itself — primitives
    only, so the spec pickles cleanly through a spawn context and a
    recovered incarnation can be built from the *same* values."""

    shard_id: int
    shards_total: int
    composites: int = 4
    tasks: int = 3
    seed: int = 0
    processing_ms: float = 1.0
    service_latency_ms: float = 5.0
    listen_host: str = "127.0.0.1"
    batch_max: int = 16
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Shard-private durability directory ("" = durability off).
    durability_dir: str = ""
    fsync: str = "interval"
    #: Recover from ``durability_dir`` instead of booting fresh.
    recover: bool = False
    #: Virtual-clock budget one ingress batch may pump for.
    ingress_wait_ms: float = 120_000.0

    def __post_init__(self) -> None:
        if not 0 <= self.shard_id < self.shards_total:
            raise ValueError(
                f"shard_id {self.shard_id} out of range for "
                f"{self.shards_total} shards"
            )
        if self.recover and not self.durability_dir:
            raise ValueError("recover=True requires a durability_dir")

    @property
    def node_id(self) -> str:
        return wire_node_id(self.shard_id)

    def composite_names(self) -> "List[str]":
        """This shard's slice of the fleet's composites (pinned spread,
        ``index % shards_total`` — the fleet harness convention)."""
        return [
            f"WireChain{index:02d}"
            for index in range(self.composites)
            if index % self.shards_total == self.shard_id
        ]


# --------------------------------------------------------------------------
# Child-process runtime
# --------------------------------------------------------------------------


class _CompositeIngress:
    """Wire endpoint for one composite: Execute in, ExecuteResult out.

    Exposes ``deliver_batch`` so the transport's drain window arrives
    whole: every Execute in the window is submitted before the shard
    platform is pumped once for all of them — the socket edge keeps the
    batch shape :meth:`Mailbox.deliver_batch` established in-proc.
    """

    def __init__(self, runtime: "_WireNodeRuntime", name: str,
                 deployment: Any) -> None:
        self.runtime = runtime
        self.name = name
        self.deployment = deployment

    def __call__(self, message: Message) -> None:
        self.deliver_batch([message])

    def deliver_batch(self, messages: "List[Message]") -> None:
        from repro.kernel.envelopes import Execute

        runtime = self.runtime
        pending: "List[Tuple[Message, Any, Any]]" = []
        for message in messages:
            envelope = message.envelope
            if not isinstance(envelope, Execute):
                continue  # codec-validated, so only a misaddressed verb
            handle = runtime.session.submit(
                self.deployment,
                envelope.operation,
                dict(envelope.arguments),
                deadline_ms=envelope.timeout_ms,
            )
            pending.append((message, envelope, handle))
        if not pending:
            return
        runtime.platform.wait_for(
            lambda: all(h.done() for _, _, h in pending),
            timeout_ms=runtime.spec.ingress_wait_ms,
        )
        runtime.executions += len(pending)
        for message, envelope, handle in pending:
            runtime.reply_result(message, envelope.request_key, handle.peek())


class _WireNodeRuntime:
    """The process-local state of one running wire node."""

    def __init__(self, spec: WireNodeSpec) -> None:
        self.spec = spec
        self.node_id = spec.node_id
        self.platform: Any = None
        self.session: Any = None
        self.wire: "Optional[WireTransport]" = None
        self.deployments: "Dict[str, Any]" = {}
        self.executions = 0
        self.recovery_summary: "Optional[Dict[str, Any]]" = None
        #: request_key -> result dict for executions that finished after
        #: a recovery (their handles died with the old process).
        self.recovered_results: "Dict[str, Dict[str, Any]]" = {}
        self._stop = threading.Event()

    # Boot -------------------------------------------------------------------

    def boot(self) -> None:
        if self.spec.recover:
            self._boot_recovered()
        else:
            self._boot_fresh()
        self._open_wire()

    def _platform_config(self, durability: "Optional[Any]") -> "Any":
        from repro.api.config import PlatformConfig

        return PlatformConfig(
            seed=self.spec.seed * 31 + self.spec.shard_id,
            processing_ms=self.spec.processing_ms,
            trace=False,
            durability=durability,
        )

    def _durability_config(self) -> "Any":
        from repro.durability.config import DurabilityConfig

        return DurabilityConfig(
            dir=self.spec.durability_dir, fsync=self.spec.fsync
        )

    def _boot_fresh(self) -> None:
        from repro.api.platform import Platform

        durability = (
            self._durability_config() if self.spec.durability_dir else None
        )
        self.platform = Platform(self._platform_config(durability))
        self._deploy_topology()
        self._open_session()

    def _boot_recovered(self) -> None:
        """Cross-process recovery: deterministic rebuild, then replay.

        The PR 6 in-process path redeploys from the live deployment
        journal; a fresh OS process has no live objects, so the rebuild
        step is the spec-driven :meth:`_deploy_topology` instead —
        byte-identical topology because every name, host and seed is a
        pure function of the spec.  Restore/replay then run unchanged.
        """
        from repro.api.platform import Platform
        from repro.durability.replay import (
            ReplayReport,
            replay_wal,
            restore_state,
        )
        from repro.durability.runtime import ShardDurability

        self.platform = Platform(self._platform_config(None))
        dur = ShardDurability(
            self._durability_config(), shard_id=self.spec.shard_id
        )
        dur.attach(
            transport=self.platform.transport,
            kernel=self.platform.kernel,
            deployer=self.platform.deployer,
            engine=self.platform.discovery,
        )
        self.platform.durability = dur
        report = ReplayReport()
        dur.begin_recovery()
        try:
            self._deploy_topology()
            report.redeployed = len(self.deployments)
            snapshot = dur.snapshots.latest()
            if snapshot is not None:
                snapshot_id, state = snapshot
                restore_state(
                    self.platform.kernel, dur.effects, state,
                    directory=self.platform.directory,
                    registry=self.platform.discovery.registry,
                )
                report.snapshot_id = snapshot_id
            # The session client must exist on the fresh kernel before
            # replay so re-driven ExecuteResult deliveries have a home.
            self._open_session()
            gate = replay_wal(dur, self.platform.transport,
                              self.platform.kernel, report)
        finally:
            dur.finish_recovery()
        # Pump resumed executions to quiescence; their results land in
        # the client's shared pool (no handles survive a process death)
        # and are served to the parent via __wire_results__.
        self.platform.wait_for(
            lambda: dur.quiescent()[0],
            timeout_ms=self.spec.ingress_wait_ms,
        )
        # A fresh process restarts the client's request-key counter, so
        # new submissions would collide with the gate's leftover keys
        # and be swallowed as replay duplicates.  Quiescence means no
        # regeneration is still in flight: seal the gate.
        sealed = gate.seal()
        self._drain_recovered_results()
        self.recovery_summary = {
            "clean_tail": report.clean_tail,
            "snapshot_id": report.snapshot_id,
            "records_total": report.records_total,
            "deliveries_replayed": report.deliveries_replayed,
            "effects_restored": report.effects_restored,
            "swallowed_sends": report.swallowed_sends,
            "sealed_keys": sealed,
            "redeployed": report.redeployed,
            "recovered_results": len(self.recovered_results),
        }

    def _deploy_topology(self) -> None:
        from repro.workload.generator import make_chain_workload
        from repro.workload.harness import composite_for_workload

        spec = self.spec
        for index in range(spec.composites):
            if index % spec.shards_total != spec.shard_id:
                continue
            name = f"WireChain{index:02d}"
            workload = make_chain_workload(
                spec.tasks,
                seed=spec.seed * 1000 + index,
                service_latency_ms=spec.service_latency_ms,
                service_prefix=f"{name}Svc",
            )
            for task_index, service in enumerate(workload.services):
                self.platform.deployer.deploy_elementary(
                    service, f"{name.lower()}-svc-{task_index:02d}"
                )
            self.deployments[name] = self.platform.deployer.deploy_composite(
                composite_for_workload(workload, name=name),
                f"{name.lower()}-host",
            )

    def _open_session(self) -> None:
        # Deterministic session identity: the client actor of a
        # recovered incarnation must land on the same address the WAL's
        # ExecuteResult deliveries target.
        self.session = self.platform.session(
            f"ingress-{self.spec.shard_id}",
            f"ingress-host-{self.spec.shard_id}",
        )

    def _open_wire(self) -> None:
        self.wire = WireTransport(
            listen_host=self.spec.listen_host,
            listen_port=0,
            batch_max=self.spec.batch_max,
            max_frame_bytes=self.spec.max_frame_bytes,
        )
        node = self.wire.add_node(self.node_id)
        for name, deployment in sorted(self.deployments.items()):
            node.register(name, _CompositeIngress(self, name, deployment))
        node.register(CONTROL_ENDPOINT, self._on_control)
        self.wire.start()

    # Replies ----------------------------------------------------------------

    def reply_result(self, request: Message, request_key: str,
                     result: "Optional[Any]") -> None:
        from repro.kernel.envelopes import ExecuteResult

        if result is None:
            envelope = ExecuteResult(
                status="timeout",
                fault="wire ingress wait budget exhausted",
                request_key=request_key,
            )
        else:
            envelope = ExecuteResult(
                execution_id=result.execution_id,
                status=result.status,
                outputs=dict(result.outputs),
                fault=result.fault,
                request_key=request_key,
            )
        self._reply(request, ExecuteResult.KIND, envelope.to_body())

    def _reply(self, request: Message, kind: str,
               body: "Dict[str, Any]") -> None:
        assert self.wire is not None
        self.wire.send(Message(
            kind=kind,
            source=self.node_id,
            source_endpoint=request.target_endpoint,
            target=request.source,
            target_endpoint=request.source_endpoint,
            body=body,
        ))

    # Control verbs ----------------------------------------------------------

    def _on_control(self, message: Message) -> None:
        kind = message.kind
        body = message.body or {}
        token = body.get("token", "")
        if kind == WIRE_PING:
            self._reply(message, WIRE_PONG, control_body(
                token=token, shard=self.spec.shard_id, node=self.node_id,
            ))
        elif kind == WIRE_STATS:
            self._reply(message, WIRE_STATS_REPLY, control_body(
                token=token,
                shard=self.spec.shard_id,
                executions=self.executions,
                composites=sorted(self.deployments),
                virtual_now_ms=self.platform.now_ms(),
                wire=dict(self.wire.wire_counters if self.wire else {}),
                recovery=self.recovery_summary,
            ))
        elif kind == WIRE_RESULTS:
            self._drain_recovered_results()
            results, self.recovered_results = self.recovered_results, {}
            self._reply(message, WIRE_RESULTS_REPLY, control_body(
                token=token, results=results,
            ))
        elif kind == WIRE_SNAPSHOT:
            dur = getattr(self.platform, "durability", None)
            if dur is None:
                self._reply(message, WIRE_SNAPSHOT_REPLY, control_body(
                    token=token, ok=False, error="durability is off",
                ))
                return
            try:
                snapshot_id = dur.take_snapshot()
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                self._reply(message, WIRE_SNAPSHOT_REPLY, control_body(
                    token=token, ok=False, error=str(exc),
                ))
                return
            self._reply(message, WIRE_SNAPSHOT_REPLY, control_body(
                token=token, ok=True, snapshot_id=snapshot_id,
            ))
        elif kind == WIRE_SHUTDOWN:
            self._reply(message, WIRE_OK, control_body(token=token))
            self._stop.set()
        # Unknown control verbs are dropped: the codec already confines
        # them to the __ namespace, and a one-sided drop is safer than
        # answering a verb from a newer protocol revision.

    def _drain_recovered_results(self) -> None:
        client = getattr(self.session, "client", None)
        if client is None:
            return
        for result in client.take_results().values():
            if not result.request_key:
                continue
            self.recovered_results[result.request_key] = {
                "execution_id": result.execution_id,
                "status": result.status,
                "outputs": dict(result.outputs),
                "fault": result.fault,
            }

    # Lifecycle --------------------------------------------------------------

    def wait_shutdown(self) -> None:
        self._stop.wait()
        # Give the __wire_ok__ reply a beat to flush before the
        # listener and its connections come down.
        time.sleep(0.05)

    def close(self) -> None:
        if self.wire is not None:
            self.wire.stop()
            self.wire = None


def _wire_node_main(spec: WireNodeSpec, conn: Any) -> None:
    """Child-process main: boot, report readiness, serve, exit 0."""
    runtime = _WireNodeRuntime(spec)
    try:
        runtime.boot()
    except BaseException as exc:  # noqa: BLE001 - the parent needs the
        # reason, whatever it was; the child is about to die anyway.
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    assert runtime.wire is not None
    conn.send(("ready", {
        "address": list(runtime.wire.address),
        "recovery": runtime.recovery_summary,
    }))
    conn.close()
    try:
        runtime.wait_shutdown()
    finally:
        runtime.close()


# --------------------------------------------------------------------------
# Parent-side handle
# --------------------------------------------------------------------------


class WireNodeHandle:
    """Parent-side view of one spawned shard process."""

    def __init__(self, process: Any, spec: WireNodeSpec,
                 address: "Tuple[str, int]",
                 recovery: "Optional[Dict[str, Any]]") -> None:
        self.process = process
        self.spec = spec
        self.address = address
        #: Replay summary of a ``recover=True`` incarnation, else None.
        self.recovery = recovery

    @property
    def node_id(self) -> str:
        return self.spec.node_id

    @property
    def pid(self) -> "Optional[int]":
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-kill the shard process (SIGKILL): the crash injection
        the durability claim is tested against — no teardown runs, the
        WAL keeps whatever the OS already has."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def join(self, timeout: "Optional[float]" = 10.0) -> "Optional[int]":
        self.process.join(timeout=timeout)
        return self.process.exitcode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else f"exit={self.process.exitcode}"
        return (
            f"<WireNodeHandle {self.node_id} pid={self.pid} "
            f"{self.address[0]}:{self.address[1]} {state}>"
        )


def spawn_wire_node(
    spec: WireNodeSpec, start_timeout: float = 60.0
) -> WireNodeHandle:
    """Spawn one shard process and wait for its listener to come up.

    Uses the ``spawn`` start method everywhere (it is the only one
    macOS supports and the only one that gives each shard a clean
    interpreter), so the spec must carry everything — no inherited
    state."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_wire_node_main,
        args=(spec, child_conn),
        name=f"wire-node-{spec.shard_id}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(start_timeout):
        process.terminate()
        process.join(timeout=10.0)
        raise TransportError(
            f"wire node {spec.node_id} did not report ready within "
            f"{start_timeout:.0f}s"
        )
    try:
        status, payload = parent_conn.recv()
    except EOFError:
        process.join(timeout=10.0)
        raise TransportError(
            f"wire node {spec.node_id} died before reporting ready "
            f"(exitcode {process.exitcode})"
        ) from None
    finally:
        parent_conn.close()
    if status != "ready":
        process.join(timeout=10.0)
        raise TransportError(
            f"wire node {spec.node_id} failed to boot: {payload}"
        )
    return WireNodeHandle(
        process=process,
        spec=spec,
        address=(payload["address"][0], int(payload["address"][1])),
        recovery=payload.get("recovery"),
    )
