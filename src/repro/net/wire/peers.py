"""Asyncio connection management for the socket wire.

One :class:`ConnectionManager` lives on a :class:`WireTransport`'s
event loop and owns every TCP connection the transport touches:

* **outbound peers** — one duplex connection per registered peer
  address, dialled lazily on first send and redialled with exponential
  backoff when it drops.  The backoff schedule *is* the resilience
  layer's :class:`~repro.resilience.retry.RetryPolicy` — the same
  pure ``backoff_ms(attempt, rng)`` curve the session retry path uses,
  so reconnect pacing is governed by one audited primitive instead of
  a second ad-hoc implementation;
* **inbound links** — connections accepted by the transport's
  listener, adopted for reading so replies can ride the connection a
  request arrived on (connection-oriented reply routing — the far side
  of a NAT'd client needs no listener of its own).

Every connection runs one read loop feeding a
:class:`~repro.net.wire.frames.FrameDecoder`; a framing violation
closes that connection (the stream cannot be realigned), a clean EOF
just retires it.  All methods must be called on the owning loop —
the transport crosses threads via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import WireProtocolError
from repro.net.wire.frames import DEFAULT_MAX_FRAME_BYTES, FrameDecoder
from repro.resilience.retry import RetryPolicy

Address = Tuple[str, int]

#: Default reconnect schedule: 6 dials spanning ~25ms..800ms.  A peer
#: that stays unreachable past that is treated as down — queued frames
#: are dropped (counted) exactly like sends to a failed node, and the
#: next send starts a fresh dial cycle (which is how a recovered shard
#: process at the same address gets picked back up).
DEFAULT_RECONNECT_POLICY = RetryPolicy(
    max_attempts=6,
    base_delay_ms=25.0,
    multiplier=2.0,
    max_delay_ms=800.0,
    jitter_fraction=0.1,
    retryable_statuses=(),
    retryable_fault_markers=(),
)

_READ_CHUNK = 1 << 16


class _Peer:
    """Outbound state for one registered peer address."""

    __slots__ = ("address", "queue", "task", "writer", "generation")

    def __init__(self, address: Address) -> None:
        self.address = address
        self.queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.task: "Optional[asyncio.Task]" = None
        self.writer: "Optional[asyncio.StreamWriter]" = None
        self.generation = 0


class ConnectionManager:
    """Owns every socket of one transport; see module docstring."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        on_payload: "Callable[[bytes, asyncio.StreamWriter], None]",
        on_disconnect: "Callable[[asyncio.StreamWriter], None]",
        counters: "Dict[str, int]",
        reconnect: "Optional[RetryPolicy]" = None,
        rng: "Optional[random.Random]" = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.loop = loop
        self.on_payload = on_payload
        self.on_disconnect = on_disconnect
        self.counters = counters
        self.reconnect = reconnect or DEFAULT_RECONNECT_POLICY
        self.rng = rng or random.Random(0)
        self.max_frame_bytes = max_frame_bytes
        self._peers: "Dict[Address, _Peer]" = {}
        self._readers: "Dict[asyncio.StreamWriter, asyncio.Task]" = {}
        self._closed = False

    # Outbound ---------------------------------------------------------------

    def send_to_peer(self, address: Address, data: bytes) -> None:
        """Queue one frame for ``address``, dialling if necessary."""
        if self._closed:
            self.counters["frames_dropped"] += 1
            return
        peer = self._peers.get(address)
        if peer is None:
            peer = self._peers[address] = _Peer(address)
        if peer.task is None or peer.task.done():
            peer.task = self.loop.create_task(self._sender(peer))
        peer.queue.put_nowait(data)

    def forget_peer(self, address: Address) -> None:
        """Drop outbound state for a re-registered/removed address."""
        peer = self._peers.pop(address, None)
        if peer is not None:
            peer.generation += 1
            if peer.task is not None and not peer.task.done():
                peer.queue.put_nowait(None)

    async def _sender(self, peer: _Peer) -> None:
        """Drain one peer's queue through a (re)dialled connection."""
        generation = peer.generation
        while not self._closed and peer.generation == generation:
            data = await peer.queue.get()
            if data is None:
                return
            writer = peer.writer
            if writer is None or writer.is_closing():
                writer = await self._dial(peer)
                if writer is None:
                    # Peer down past the whole backoff schedule: this
                    # frame (and everything queued behind it) drops,
                    # like sends to a failed node.
                    dropped = 1
                    while not peer.queue.empty():
                        if peer.queue.get_nowait() is not None:
                            dropped += 1
                    self.counters["frames_dropped"] += dropped
                    continue
            try:
                writer.write(data)
                await writer.drain()
                self.counters["frames_sent"] += 1
                self.counters["bytes_sent"] += len(data)
            except (ConnectionError, OSError):
                peer.writer = None
                # Redial once for this frame on the next queue pass.
                peer.queue.put_nowait(data)

    async def _dial(self, peer: _Peer) -> "Optional[asyncio.StreamWriter]":
        """Connect with the retry policy's backoff; ``None`` = gave up."""
        policy = self.reconnect
        host, port = peer.address
        for attempt in range(1, policy.max_attempts + 1):
            if self._closed:
                return None
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError):
                self.counters["dial_failures"] += 1
                if attempt == policy.max_attempts:
                    return None
                await asyncio.sleep(
                    policy.backoff_ms(attempt, self.rng) / 1000.0
                )
                continue
            peer.writer = writer
            self.counters["connects"] += 1
            if attempt > 1:
                self.counters["reconnects"] += 1
            self.adopt(reader, writer)
            return writer
        return None

    # Inbound / shared reading ----------------------------------------------

    def adopt(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Start the read loop for one (inbound or outbound) connection."""
        if self._closed:
            writer.close()
            return
        self._readers[writer] = self.loop.create_task(
            self._read_loop(reader, writer)
        )

    async def _read_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return  # clean EOF
                self.counters["bytes_received"] += len(data)
                try:
                    payloads = decoder.feed(data)
                except WireProtocolError:
                    self.counters["framing_errors"] += 1
                    return  # desynchronised stream: drop the connection
                for payload in payloads:
                    self.counters["frames_received"] += 1
                    self.on_payload(payload, writer)
        except (ConnectionError, OSError):
            return
        finally:
            self._readers.pop(writer, None)
            for peer in self._peers.values():
                if peer.writer is writer:
                    peer.writer = None
            self.on_disconnect(writer)
            writer.close()

    def send_via(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        """Write a frame on an existing connection (reply routing)."""
        if self._closed or writer.is_closing():
            self.counters["frames_dropped"] += 1
            return False
        writer.write(data)
        self.counters["frames_sent"] += 1
        self.counters["bytes_sent"] += len(data)
        return True

    # Shutdown ---------------------------------------------------------------

    async def aclose(self, drain_timeout: float = 2.0) -> None:
        """Flush queued sends (bounded), then close every connection."""
        self._closed = True
        senders = [
            peer.task for peer in self._peers.values()
            if peer.task is not None and not peer.task.done()
        ]
        for peer in self._peers.values():
            peer.queue.put_nowait(None)
        if senders:
            await asyncio.wait(senders, timeout=drain_timeout)
            for task in senders:
                if not task.done():
                    task.cancel()
        for writer in list(self._readers):
            writer.close()
        readers = list(self._readers.values())
        if readers:
            await asyncio.wait(readers, timeout=drain_timeout)
            for task in readers:
                if not task.done():
                    task.cancel()
        self._readers.clear()
        self._peers.clear()


def fresh_counters() -> "Dict[str, int]":
    """The zeroed wire-level counter block a transport starts with."""
    return {
        "frames_sent": 0,
        "frames_received": 0,
        "bytes_sent": 0,
        "bytes_received": 0,
        "frames_dropped": 0,
        "framing_errors": 0,
        "codec_errors": 0,
        "connects": 0,
        "reconnects": 0,
        "dial_failures": 0,
        "routes_learned": 0,
    }
