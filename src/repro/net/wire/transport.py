""":class:`WireTransport` — the :class:`~repro.net.transport.Transport`
implementation over real asyncio TCP sockets.

Topology model: each *process* runs one ``WireTransport``.  Nodes
registered on it are **local** — they get the threaded in-proc
delivery machinery (one dispatcher thread per node, queue-drain
batching) this class inherits from
:class:`~repro.net.inproc.InProcTransport`.  Node ids mapped through
:meth:`register_peer` are **remote**: a send to one is encoded through
the compiled envelope codecs, framed, and written to the peer
process's listener by the connection manager (reconnect/backoff on the
resilience retry schedule).  Incoming frames are decoded — every
protocol verb is validated at the boundary — and fed into the same
local dispatcher queues, so a drain window of socket arrivals reaches
:meth:`~repro.kernel.mailbox.Mailbox.deliver_batch` exactly like an
in-proc window would.

Reply routing is connection-oriented: when a frame from node ``S``
arrives on connection ``c`` and ``S`` is neither local nor a
registered peer, the transport learns ``S -> c`` and later sends to
``S`` ride that connection back.  A client behind an ephemeral port
therefore needs no listener: the :mod:`repro.fleet.wire` shard
processes answer the frontend on the connection its request arrived
on, exactly like the event-driven service buses this layer is modelled
on.

``stop()`` is the clean-shutdown contract the test suite's leak
fixture enforces: close the listener, flush and close every peer
connection, stop the event loop and join its thread, then tear down
the inherited dispatcher threads and timers.  Idempotent.
"""

from __future__ import annotations

import asyncio
import queue as queue_module
import random
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import TransportError, WireCodecError
from repro.net.inproc import _SHUTDOWN, InProcTransport, _TimerMessage
from repro.net.message import Message
from repro.net.wire.codec import decode_message, encode_message
from repro.net.wire.frames import DEFAULT_MAX_FRAME_BYTES, encode_frame
from repro.net.wire.peers import Address, ConnectionManager, fresh_counters
from repro.resilience.retry import RetryPolicy


class WireTransport(InProcTransport):
    """Transport whose remote edges are real TCP connections.

    ``listen_port=0`` binds an ephemeral port; read :attr:`address`
    after :meth:`start` to learn it.  ``batch_max`` governs the local
    dispatcher drain exactly as on the in-proc transport — and because
    socket arrivals enter the same queues, it is also the wire-side
    batch window.
    """

    concurrent_delivery = True

    def __init__(
        self,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        batch_max: int = 16,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect: "Optional[RetryPolicy]" = None,
        reconnect_seed: int = 0,
    ) -> None:
        super().__init__(batch_max=batch_max)
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.max_frame_bytes = max_frame_bytes
        #: Wire-level counters (frames/bytes/reconnects/errors); one
        #: flat dict so tests and ledgers can snapshot it wholesale.
        self.wire_counters = fresh_counters()
        self._reconnect = reconnect
        self._reconnect_seed = reconnect_seed
        self._peers: "Dict[str, Address]" = {}
        #: node id -> live connection a frame from it last arrived on.
        self._routes: "Dict[str, asyncio.StreamWriter]" = {}
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._loop_thread: "Optional[threading.Thread]" = None
        self._loop_ready = threading.Event()
        self._server: "Optional[asyncio.base_events.Server]" = None
        self._manager: "Optional[ConnectionManager]" = None
        self._bound: "Optional[Tuple[str, int]]" = None
        self._wire_started = False
        self._startup_error: "Optional[BaseException]" = None

    # Lifecycle --------------------------------------------------------------

    @property
    def address(self) -> "Tuple[str, int]":
        """The listener's actual ``(host, port)`` (after ``start()``)."""
        if self._bound is None:
            raise TransportError(
                "WireTransport has no bound address before start()"
            )
        return self._bound

    def start(self) -> None:
        super().start()
        if self._wire_started:
            return
        self._wire_started = True
        self._loop_ready.clear()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="wire-loop", daemon=True
        )
        self._loop_thread.start()
        if not self._loop_ready.wait(timeout=10.0):
            raise TransportError("wire event loop failed to start")
        if self._startup_error is not None:
            error = self._startup_error
            self.stop()
            raise TransportError(
                f"wire listener failed to bind on "
                f"{self.listen_host}:{self.listen_port}: {error}"
            )

    def _run_loop(self) -> None:
        self._startup_error = None
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._manager = ConnectionManager(
            loop,
            on_payload=self._on_payload,
            on_disconnect=self._on_disconnect,
            counters=self.wire_counters,
            reconnect=self._reconnect,
            rng=random.Random(self._reconnect_seed),
            max_frame_bytes=self.max_frame_bytes,
        )

        async def bring_up() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._on_client, self.listen_host, self.listen_port
                )
                sock = self._server.sockets[0]
                self._bound = sock.getsockname()[:2]
            except OSError as exc:
                self._startup_error = exc
            finally:
                self._loop_ready.set()

        loop.create_task(bring_up())
        try:
            loop.run_forever()
        finally:
            # Cancel stragglers so loop.close() never warns.
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(
                loop.shutdown_asyncgens()
            )
            loop.close()

    def stop(self, timeout: float = 5.0) -> None:
        if self._wire_started:
            self._wire_started = False
            loop = self._loop
            if loop is not None and loop.is_running():
                done = threading.Event()

                async def bring_down() -> None:
                    try:
                        if self._server is not None:
                            self._server.close()
                            await self._server.wait_closed()
                        if self._manager is not None:
                            await self._manager.aclose()
                    finally:
                        done.set()
                        loop.stop()

                loop.call_soon_threadsafe(loop.create_task, bring_down())
                done.wait(timeout=timeout)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=timeout)
                self._loop_thread = None
            self._routes.clear()
            self._server = None
            self._manager = None
            self._loop = None
            self._bound = None
        super().stop(timeout=timeout)

    # Peer topology ----------------------------------------------------------

    def register_peer(self, node_id: str, address: "Tuple[str, int]") -> None:
        """Map a remote node id to its process's listener address.

        Re-registering (a recovered shard process listens on a new
        port) drops the old connection state; queued frames for the
        dead incarnation are dropped, as they would be on any failed
        host.
        """
        if self.has_node(node_id):
            raise TransportError(
                f"node {node_id!r} is local to this transport; it cannot "
                f"also be a remote peer"
            )
        address = (address[0], int(address[1]))
        previous = self._peers.get(node_id)
        self._peers[node_id] = address
        self._routes.pop(node_id, None)
        if previous is not None and previous != address:
            loop, manager = self._loop, self._manager
            if loop is not None and manager is not None:
                loop.call_soon_threadsafe(manager.forget_peer, previous)

    def peers(self) -> "Dict[str, Tuple[str, int]]":
        return dict(self._peers)

    # Sending ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        if message.target in self._nodes:
            super().send(message)
            return
        if not self._wire_started:
            raise TransportError(
                "WireTransport.send called before start(); use it as a "
                "context manager or call start()"
            )
        route = self._routes.get(message.target)
        peer = self._peers.get(message.target)
        if route is None and peer is None:
            raise TransportError(
                f"unknown target node {message.target!r} (not local, not "
                f"a registered peer, no learned route)"
            )
        source = self._nodes.get(message.source)
        if source is not None and not source.up:
            return  # a dead host sends nothing
        self.stats.record_sent(message)
        try:
            frame = encode_frame(
                encode_message(message), self.max_frame_bytes
            )
        except WireCodecError:
            self.wire_counters["codec_errors"] += 1
            raise
        loop, manager = self._loop, self._manager
        if loop is None or manager is None:
            self.wire_counters["frames_dropped"] += 1
            return
        if route is not None:
            loop.call_soon_threadsafe(self._send_routed, message.target,
                                      route, frame, peer)
        else:
            loop.call_soon_threadsafe(manager.send_to_peer, peer, frame)

    def _send_routed(
        self,
        node_id: str,
        writer: "asyncio.StreamWriter",
        frame: bytes,
        fallback_peer: "Optional[Address]",
    ) -> None:
        """Loop-thread half of a learned-route send, with peer fallback."""
        manager = self._manager
        if manager is None:
            return
        if manager.send_via(writer, frame):
            return
        self._routes.pop(node_id, None)
        if fallback_peer is not None:
            manager.send_to_peer(fallback_peer, frame)

    # Receiving (loop thread) ------------------------------------------------

    async def _on_client(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        manager = self._manager
        if manager is None:
            writer.close()
            return
        manager.adopt(reader, writer)

    def _on_payload(
        self, payload: bytes, writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            message = decode_message(payload)
        except WireCodecError:
            # One bad message does not poison the connection (framing
            # is intact); it is counted and dropped, like a malformed
            # body at the mailbox boundary.
            self.wire_counters["codec_errors"] += 1
            return
        source = message.source
        if source not in self._nodes and self._routes.get(source) is not writer:
            self._routes[source] = writer
            self.wire_counters["routes_learned"] += 1
        queue = self._queues.get(message.target)
        if queue is None or not self._started:
            self.stats.record_dropped(message)
            return
        queue.put(message)

    def _on_disconnect(self, writer: "asyncio.StreamWriter") -> None:
        for node_id in [
            n for n, w in self._routes.items() if w is writer
        ]:
            del self._routes[node_id]

    # Local dispatch ---------------------------------------------------------

    def _dispatch_loop(self, node_id: str) -> None:
        """Queue drain with *window* delivery.

        The in-proc parent drains up to ``batch_max`` queued messages
        but still delivers them one at a time; here the drained window
        is handed to :meth:`Transport._deliver_batch_now` so
        same-endpoint runs reach ``Mailbox.deliver_batch`` in one call
        — socket arrivals get the same batch-aggregated counter path
        the simulator's coalesced windows enjoy.  Timer callbacks
        (scheduled via ``threading.Timer`` onto the same queue to keep
        the one-thread-per-node model) split the window.
        """
        q = self._queues[node_id]
        while True:
            item = q.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            shutdown = False
            while len(batch) < self.batch_max:
                try:
                    extra = q.get_nowait()
                except queue_module.Empty:
                    break
                if extra is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(extra)
            if len(batch) > 1:
                self.stats.record_batch_flush(len(batch))
            window: "List[Message]" = []
            for message in batch:
                if isinstance(message, _TimerMessage):
                    self._flush_window(window)
                    try:
                        message.callback()
                    except Exception:  # noqa: BLE001 - timer bug must
                        # not kill the dispatcher
                        self.stats.record_dropped(message)
                else:
                    window.append(message)
            self._flush_window(window)
            if shutdown:
                return

    def _flush_window(self, window: "List[Message]") -> None:
        if not window:
            return
        try:
            self._deliver_batch_now(list(window))
        except Exception:  # noqa: BLE001 - a handler bug must not kill
            # the dispatcher; errors surface as timeouts at the caller.
            for message in window:
                self.stats.record_dropped(message)
        window.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self._bound if self._bound else "unbound"
        return (
            f"<WireTransport {where} local={list(self._nodes)} "
            f"peers={list(self._peers)}>"
        )
