"""Simulated transport: deterministic latency, loss, and failures."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.simulator import Simulator


@dataclass
class _DeliveryBatch:
    """One open coalescing window at a target host."""

    opened_at: float    # arrival time of the message that opened it
    flush_at: float
    messages: "List[Tuple[float, Message]]" = field(default_factory=list)


class SimTransport(Transport):
    """Transport running on a :class:`~repro.sim.simulator.Simulator`.

    * message latency comes from a pluggable :class:`LatencyModel`,
    * ``loss_rate`` drops that fraction of remote messages at random,
    * node failure drops messages addressed to (or sent by) dead hosts,
    * ``schedule`` maps to simulator events, so service work time and
      timeouts share the same virtual clock as network delays,
    * ``processing_ms`` models per-message handling cost at the receiving
      host (socket handling + XML parsing): each node processes incoming
      *network* messages serially, so a host that every message passes
      through (a central orchestrator) becomes a queueing bottleneck
      under load — the effect behind the paper's scalability argument.
      Local (same-host) calls skip the network stack and pay nothing.
      Default 0 disables the model.
    * ``batch_window_ms`` coalesces delivery (``repro.perf``): messages
      arriving at the same host within the window are held and handed
      over in one flush event, trading at most one window of added
      latency for fewer arrivals — ``stats.batch_flushes`` /
      ``stats.wire_arrivals()`` measure the effect.  Default 0 keeps
      one delivery event per message.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        processing_ms: float = 0.0,
        batch_window_ms: float = 0.0,
        batch_max: int = 64,
    ) -> None:
        super().__init__()
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if processing_ms < 0:
            raise ValueError("processing_ms must be >= 0")
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.simulator = simulator or Simulator()
        self.latency = latency or FixedLatency()
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.processing_ms = processing_ms
        self.batch_window_ms = batch_window_ms
        self.batch_max = batch_max
        self._busy_until: "dict[str, float]" = {}
        # Per-target open delivery window (batching only): the newest
        # batch still accepting messages; flushed batches drop out.
        self._open_batches: "dict[str, _DeliveryBatch]" = {}

    def send(self, message: Message) -> None:
        if not self._precheck_send(message):
            return
        if (
            self.loss_rate > 0.0
            and not message.is_local
            and self.rng.random() < self.loss_rate
        ):
            self.stats.record_dropped(message)
            return
        delay = self.latency.sample_ms(message.source, message.target,
                                       self.rng)
        if self.batch_window_ms > 0:
            self._enqueue_batched(message, self.simulator.now + delay)
            return
        if self.processing_ms > 0 and not message.is_local:
            delay = self._serial_processing_delay(message.target,
                                                  self.simulator.now + delay)
        self.simulator.schedule(delay, lambda: self._deliver_now(message))

    def _serial_processing_delay(self, target: str, arrival: float) -> float:
        """Delay-from-now after serial handling at the target host.

        The message is picked up when the host frees up, then occupies
        it for ``processing_ms``.
        """
        start = max(arrival, self._busy_until.get(target, 0.0))
        done = start + self.processing_ms
        self._busy_until[target] = done
        return done - self.simulator.now

    # Delivery batching ------------------------------------------------------

    def _enqueue_batched(self, message: Message, arrival: float) -> None:
        """Join the target's open delivery window, or open a new one.

        A window opens at the first message's arrival time and flushes
        ``batch_window_ms`` later; messages whose own arrival falls
        *inside* the window — no earlier than the opener (else the
        flush would hold them longer than one window), no later than
        the flush — ride the same flush.  Delivery never happens before
        a message's arrival time, so batching only ever *adds* up to
        one window of latency, regardless of the latency model.
        """
        batch = self._open_batches.get(message.target)
        if (
            batch is not None
            and batch.opened_at <= arrival <= batch.flush_at
            and len(batch.messages) < self.batch_max
        ):
            batch.messages.append((arrival, message))
            return
        new_batch = _DeliveryBatch(
            opened_at=arrival,
            flush_at=arrival + self.batch_window_ms,
            messages=[(arrival, message)],
        )
        self._open_batches[message.target] = new_batch
        self.simulator.schedule(
            new_batch.flush_at - self.simulator.now,
            lambda: self._flush_batch(message.target, new_batch),
        )

    def _flush_batch(self, target: str, batch: "_DeliveryBatch") -> None:
        if self._open_batches.get(target) is batch:
            del self._open_batches[target]
        self.stats.record_batch_flush(len(batch.messages))
        # Arrival order within the flush mirrors the unbatched schedule.
        ordered = sorted(enumerate(batch.messages),
                         key=lambda item: (item[1][0], item[0]))
        if self.processing_ms <= 0:
            # No serial-processing model: the whole window drains in one
            # batch delivery, amortising the mailbox middleware per run
            # (per-message order, stats and observer semantics intact).
            self._deliver_batch_now([m for _, (_, m) in ordered])
            return
        for _, (arrival, message) in ordered:
            if not message.is_local:
                delay = self._serial_processing_delay(target,
                                                      self.simulator.now)
                self.simulator.schedule(
                    delay, lambda m=message: self._deliver_now(m)
                )
            else:
                self._deliver_now(message)

    def schedule(
        self, node_id: str, delay_ms: float, callback: Callable[[], None]
    ) -> Callable[[], None]:
        node = self.node(node_id)

        def fire() -> None:
            if node.up:
                callback()

        event = self.simulator.schedule(delay_ms, fire)
        return event.cancel

    def now_ms(self) -> float:
        return self.simulator.now

    # Convenience for tests/benchmarks --------------------------------------

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue (the whole distributed system quiesces)."""
        self.simulator.run(max_events=max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout_ms: Optional[float] = None,
    ) -> bool:
        """Run the simulation until ``predicate`` holds or timeout."""
        return self.simulator.run_until(predicate, timeout_ms=timeout_ms)

    def wait_for(
        self,
        predicate: Callable[[], bool],
        timeout_ms: Optional[float] = None,
    ) -> bool:
        return self.run_until(predicate, timeout_ms=timeout_ms)
