"""Simulated transport: deterministic latency, loss, and failures."""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.simulator import Simulator


class SimTransport(Transport):
    """Transport running on a :class:`~repro.sim.simulator.Simulator`.

    * message latency comes from a pluggable :class:`LatencyModel`,
    * ``loss_rate`` drops that fraction of remote messages at random,
    * node failure drops messages addressed to (or sent by) dead hosts,
    * ``schedule`` maps to simulator events, so service work time and
      timeouts share the same virtual clock as network delays,
    * ``processing_ms`` models per-message handling cost at the receiving
      host (socket handling + XML parsing): each node processes incoming
      *network* messages serially, so a host that every message passes
      through (a central orchestrator) becomes a queueing bottleneck
      under load — the effect behind the paper's scalability argument.
      Local (same-host) calls skip the network stack and pay nothing.
      Default 0 disables the model.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        processing_ms: float = 0.0,
    ) -> None:
        super().__init__()
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if processing_ms < 0:
            raise ValueError("processing_ms must be >= 0")
        self.simulator = simulator or Simulator()
        self.latency = latency or FixedLatency()
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.processing_ms = processing_ms
        self._busy_until: "dict[str, float]" = {}

    def send(self, message: Message) -> None:
        if not self._precheck_send(message):
            return
        if (
            self.loss_rate > 0.0
            and not message.is_local
            and self.rng.random() < self.loss_rate
        ):
            self.stats.record_dropped(message)
            return
        delay = self.latency.sample_ms(message.source, message.target,
                                       self.rng)
        if self.processing_ms > 0 and not message.is_local:
            # Serial handling at the target: the message is picked up when
            # the host frees up, then occupies it for processing_ms.
            arrival = self.simulator.now + delay
            start = max(arrival, self._busy_until.get(message.target,
                                                      0.0))
            done = start + self.processing_ms
            self._busy_until[message.target] = done
            delay = done - self.simulator.now
        self.simulator.schedule(delay, lambda: self._deliver_now(message))

    def schedule(
        self, node_id: str, delay_ms: float, callback: Callable[[], None]
    ) -> Callable[[], None]:
        node = self.node(node_id)

        def fire() -> None:
            if node.up:
                callback()

        event = self.simulator.schedule(delay_ms, fire)
        return event.cancel

    def now_ms(self) -> float:
        return self.simulator.now

    # Convenience for tests/benchmarks --------------------------------------

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue (the whole distributed system quiesces)."""
        self.simulator.run(max_events=max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout_ms: Optional[float] = None,
    ) -> bool:
        """Run the simulation until ``predicate`` holds or timeout."""
        return self.simulator.run_until(predicate, timeout_ms=timeout_ms)

    def wait_for(
        self,
        predicate: Callable[[], bool],
        timeout_ms: Optional[float] = None,
    ) -> bool:
        return self.run_until(predicate, timeout_ms=timeout_ms)
