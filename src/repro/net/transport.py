"""Abstract transport interface shared by the simulated and threaded nets.

The runtime layer is written against this interface only, so the exact
same coordinator/wrapper code runs on the deterministic simulator and on
real threads — a key design constraint: the P2P protocol must not depend
on timing properties a simulator can't honour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import TransportError
from repro.net.message import Message
from repro.net.node import Node
from repro.net.stats import TrafficStats


class Transport:
    """Base transport: node registry, failure injection, statistics."""

    #: Whether message handlers may run on multiple threads at once.
    #: Consumers that keep shared mutable state (e.g. the kernel's
    #: counters middleware) synchronise only when this is True.
    concurrent_delivery = False

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self.stats = TrafficStats()
        self._observers: "List[Callable[[Message, float], None]]" = []

    # Observation -----------------------------------------------------------

    def add_observer(self, callback: "Callable[[Message, float], None]") -> None:
        """Register a delivery observer: ``callback(message, time_ms)``.

        Observers see every *delivered* message (after latency, before
        the handler runs).  This is the hook behind execution tracing and
        monitoring — it never mutates messages.
        """
        self._observers.append(callback)

    def remove_observer(
        self, callback: "Callable[[Message, float], None]"
    ) -> None:
        self._observers.remove(callback)

    # Node management -------------------------------------------------------

    def add_node(self, node_id: str) -> Node:
        """Create and register a node; raises on duplicates."""
        if node_id in self._nodes:
            raise TransportError(f"node {node_id!r} already registered")
        node = Node(node_id)
        self._nodes[node_id] = node
        return node

    def node(self, node_id: str) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise TransportError(f"unknown node {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> "List[str]":
        return list(self._nodes.keys())

    # Failure injection -------------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Take a host down: its messages are dropped from now on."""
        self.node(node_id).up = False

    def recover_node(self, node_id: str) -> None:
        """Bring a failed host back up."""
        self.node(node_id).up = True

    def is_up(self, node_id: str) -> bool:
        return self.node(node_id).up

    # Core operations (implemented by subclasses) ------------------------------

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery.

        Fire-and-forget: delivery failure (target down, loss) is observed
        by the application through timeouts, exactly as with sockets.
        """
        raise NotImplementedError

    def schedule(
        self, node_id: str, delay_ms: float, callback: Callable[[], None]
    ) -> Callable[[], None]:
        """Run ``callback`` on ``node_id`` after ``delay_ms``.

        Models local work (service execution time) and timers (invocation
        timeouts).  Returns a cancel function.  The callback is skipped if
        the node is down when the timer fires — a dead host's timers die
        with it.
        """
        raise NotImplementedError

    def now_ms(self) -> float:
        """Current time in milliseconds (virtual or wall-clock)."""
        raise NotImplementedError

    def wait_for(
        self, predicate: Callable[[], bool], timeout_ms: Optional[float] = None
    ) -> bool:
        """Block (or simulate) until ``predicate()`` holds.

        Returns whether the predicate held before the timeout.  The
        simulated transport advances virtual time; the threaded transport
        polls wall-clock time.  This is the only blocking primitive the
        client layer uses, which keeps client code transport-agnostic.
        """
        raise NotImplementedError

    # Shared helpers ----------------------------------------------------------

    def _precheck_send(self, message: Message) -> bool:
        """Record the send; returns False when it must be dropped at source."""
        if message.target not in self._nodes:
            raise TransportError(f"unknown target node {message.target!r}")
        source = self._nodes.get(message.source)
        if source is not None and not source.up:
            # A dead host sends nothing; silently ignore (its threads are
            # conceptually gone).
            return False
        self.stats.record_sent(message)
        return True

    def _deliver_now(self, message: Message) -> None:
        """Hand the message to the target endpoint if the target is up."""
        target = self._nodes[message.target]
        if not target.up or not target.has_endpoint(message.target_endpoint):
            self.stats.record_dropped(message)
            return
        self.stats.record_delivered(message)
        if self._observers:
            now = self.now_ms()
            for observer in self._observers:
                observer(message, now)
        target.endpoint(message.target_endpoint).deliver(message)

    def _deliver_batch_now(self, messages: "List[Message]") -> None:
        """Deliver one flushed window, handing same-endpoint runs over
        in single :meth:`Endpoint.deliver_batch` calls.

        Per-message semantics are preserved: each message is validated
        (target up, endpoint registered), recorded and shown to the
        observers individually, in order, exactly as a
        :meth:`_deliver_now` loop would.  Only *consecutive* messages
        to the same endpoint are grouped, and the group is formed
        before its handlers run — so a handler that takes its own node
        down mid-run still receives the rest of that run, like a
        socket server draining bytes it has already read off the wire.
        Messages to a different endpoint re-validate from scratch.
        """
        nodes = self._nodes
        stats = self.stats
        observers = self._observers
        i = 0
        n = len(messages)
        while i < n:
            message = messages[i]
            target_id = message.target
            endpoint_name = message.target_endpoint
            target = nodes[target_id]
            if not target.up or not target.has_endpoint(endpoint_name):
                stats.record_dropped(message)
                i += 1
                continue
            run = [message]
            i += 1
            while i < n:
                nxt = messages[i]
                if (
                    nxt.target != target_id
                    or nxt.target_endpoint != endpoint_name
                ):
                    break
                run.append(nxt)
                i += 1
            if observers:
                now = self.now_ms()
                for msg in run:
                    stats.record_delivered(msg)
                    for observer in observers:
                        observer(msg, now)
            else:
                for msg in run:
                    stats.record_delivered(msg)
            target.endpoint(endpoint_name).deliver_batch(run)
