"""Nodes: provider hosts carrying named endpoints."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import TransportError
from repro.net.message import Message

EndpointHandler = Callable[[Message], None]


class Endpoint:
    """A named message sink on a node (a wrapper or a coordinator).

    A handler object exposing ``deliver_batch`` (the kernel's
    :class:`~repro.kernel.mailbox.Mailbox`) gets whole drain windows
    handed over in one call on the transport's batch path; plain
    callables are looped transparently.
    """

    __slots__ = ("name", "handler", "_batch_handler")

    def __init__(self, name: str, handler: EndpointHandler) -> None:
        self.name = name
        self.handler = handler
        self._batch_handler = getattr(handler, "deliver_batch", None)

    def deliver(self, message: Message) -> None:
        self.handler(message)

    def deliver_batch(self, messages: "List[Message]") -> None:
        batch_handler = self._batch_handler
        if batch_handler is not None:
            batch_handler(messages)
            return
        handler = self.handler
        for message in messages:
            handler(message)


class Node:
    """One provider host.

    A node is a passive addressing unit: the transport owns scheduling and
    delivery; the node just maps endpoint names to handlers and tracks its
    own up/down status (failure injection flips it).
    """

    def __init__(self, node_id: str) -> None:
        if not node_id:
            raise TransportError("node id must be non-empty")
        self.node_id = node_id
        self._endpoints: Dict[str, Endpoint] = {}
        self.up = True

    def register(self, name: str, handler: EndpointHandler) -> Endpoint:
        """Register an endpoint; raises on duplicate names."""
        if name in self._endpoints:
            raise TransportError(
                f"node {self.node_id!r} already has endpoint {name!r}"
            )
        endpoint = Endpoint(name, handler)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        if name not in self._endpoints:
            raise TransportError(
                f"node {self.node_id!r} has no endpoint {name!r}"
            )
        del self._endpoints[name]

    def endpoint(self, name: str) -> Endpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(
                f"node {self.node_id!r} has no endpoint {name!r}"
            )
        return endpoint

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    def endpoint_names(self) -> "List[str]":
        return list(self._endpoints.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "up" if self.up else "DOWN"
        return f"Node({self.node_id!r}, {status}, endpoints={len(self._endpoints)})"
