"""The actor substrate every runtime participant is built on.

The paper's execution model is uniform by design: "coordinators and
wrappers are uniform lightweight actors exchanging a small message
vocabulary precomputed into routing tables."  This module is that
uniformity, made code:

* :class:`Actor` — base class with a *declarative* verb -> handler
  dispatch table (the :func:`handles` decorator), a kernel-owned
  :class:`~repro.kernel.mailbox.Mailbox` as its delivery point, uniform
  lifecycle (``start``/``stop``, with the v1 ``install``/``uninstall``
  names kept as aliases), and envelope-only ``send``/``reply`` — no
  actor ever builds a raw dict body or a :class:`Message` by hand.
* :class:`ActorKernel` — the shared substrate one platform's actors
  live on: the middleware chain (see
  :mod:`repro.kernel.middleware`), the delivery-tap fan-out the passive
  subsystems (tracer, health registry) observe through, and the actor
  registry.

Endpoint names come exclusively from the ``repro.runtime.protocol``
helpers; subclasses implement :attr:`Actor.endpoint_name` with them.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Type,
)

from repro.kernel.envelopes import Envelope
from repro.kernel.mailbox import Mailbox
from repro.kernel.middleware import ActorMiddleware, KernelCounters
from repro.net.message import Message
from repro.net.transport import Transport

#: Signature of a delivery tap: ``tap(message, time_ms)`` (the same
#: shape as a transport observer — taps see every delivered message).
DeliveryTap = Callable[[Message, float], None]


def subscribe_deliveries(
    target: Any, callback: DeliveryTap
) -> "Callable[[], None]":
    """Attach ``callback`` to a delivery stream; returns the detach.

    ``target`` is an :class:`ActorKernel` (the callback rides the
    kernel's tap chain — one shared transport observer for every
    passive subsystem) or a bare :class:`~repro.net.transport.Transport`
    (v1 behaviour: a dedicated observer).  The tracer and the health
    registry both subscribe through here, so the kernel-or-transport
    fallback lives in exactly one place.
    """
    if isinstance(target, ActorKernel):
        target.add_tap(callback)
        return lambda: target.remove_tap(callback)
    target.add_observer(callback)
    return lambda: target.remove_observer(callback)


def handles(envelope_cls: "Type[Envelope]") -> "Callable[[Callable], Callable]":
    """Mark a method as the handler of one protocol verb.

    ::

        class MyWrapper(Actor):
            @handles(Invoke)
            def _on_invoke(self, invoke: Invoke, message: Message) -> None:
                ...

    Handlers receive the decoded envelope and the raw message (for
    ``reply_address()``).  The verb -> handler table is assembled per
    class by :meth:`Actor.__init_subclass__`; a class inherits its
    bases' handlers and may override them.
    """

    def mark(method: "Callable") -> "Callable":
        method._handles_kind = envelope_cls.KIND  # type: ignore[attr-defined]
        return method

    return mark


class ActorKernel:
    """The shared substrate a set of actors runs on.

    One kernel per platform (the :class:`~repro.api.Platform` and the
    :class:`~repro.deployment.Deployer` each ensure one exists): it owns
    the middleware chain every actor's mailbox and ``send`` run
    through, the single transport observer behind :meth:`add_tap`, and
    a registry of started actors.  Actors constructed without a kernel
    get a private empty one, so standalone construction (tests,
    microbenchmarks) needs no wiring.
    """

    def __init__(
        self,
        transport: Optional[Transport] = None,
        middleware: "Optional[List[ActorMiddleware]]" = None,
        counters: bool = True,
        zero_copy: bool = False,
    ) -> None:
        self.transport = transport
        self.middleware: "List[ActorMiddleware]" = list(middleware or ())
        #: Opt-in in-proc fast path (``repro.perf``): sends whose target
        #: address is an actor started on *this* kernel attach the typed
        #: envelope to the message instead of encoding it, and the
        #: receiving mailbox dispatches it without decoding.  The wire
        #: body stays available lazily (observers, durability logging
        #: and traffic stats see the identical encoding), and any
        #: address not on this kernel — another shard, a real socket —
        #: takes the full codec path.
        self.zero_copy = zero_copy
        #: ``(host, endpoint)`` addresses of actors started here; the
        #: zero-copy guard at send time.
        self._local_addresses: "set" = set()
        #: The default perf tap: uniform per-actor/per-verb counters.
        self.counters: Optional[KernelCounters] = None
        if counters:
            # Lock the counters only where delivery is actually
            # concurrent; without a transport, assume the worst.
            self.counters = KernelCounters(thread_safe=(
                transport.concurrent_delivery if transport is not None
                else True
            ))
            self.middleware.append(self.counters)
        self._taps: "List[DeliveryTap]" = []
        self._observing = False
        self._actors: "Dict[str, Actor]" = {}
        self._rebuild_hooks()

    # Middleware -------------------------------------------------------------

    def add_middleware(self, middleware: ActorMiddleware) -> ActorMiddleware:
        """Append one middleware to the chain (applies to all actors)."""
        self.middleware.append(middleware)
        self._rebuild_hooks()
        return middleware

    def remove_middleware(self, middleware: ActorMiddleware) -> None:
        self.middleware.remove(middleware)
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        """Cache per-hook call lists, skipping inherited no-op hooks.

        Actors and mailboxes iterate these lists on every message, so a
        middleware only costs the hot path for the hooks it actually
        overrides — a chain of passive counters adds nothing to the
        ``before_handle`` path, for example.  ``after_hooks`` is stored
        reversed (innermost-first, like unwinding nested decorators).
        """
        base = ActorMiddleware

        def overriding(name: str) -> list:
            return [
                getattr(mw, name) for mw in self.middleware
                if getattr(type(mw), name) is not getattr(base, name)
            ]

        self.before_hooks = overriding("before_handle")
        self.after_hooks = list(reversed(overriding("after_handle")))
        self.send_hooks = overriding("on_send")
        self.malformed_hooks = overriding("on_malformed")
        # Batch drain (see Mailbox.deliver_batch): batch-aware
        # middlewares get one after_handle_batch call per drain window;
        # the rest keep their per-message after_handle calls there too.
        self.batch_after_hooks = overriding("after_handle_batch")
        batch_aware = {
            id(mw) for mw in self.middleware
            if type(mw).after_handle_batch is not base.after_handle_batch
        }
        self.unbatched_after_hooks = list(reversed([
            mw.after_handle for mw in self.middleware
            if type(mw).after_handle is not base.after_handle
            and id(mw) not in batch_aware
        ]))

    # Delivery taps ----------------------------------------------------------

    def add_tap(self, tap: DeliveryTap) -> DeliveryTap:
        """Register a delivery tap fed from one kernel-owned observer.

        Taps see every message the transport delivers (after latency,
        before the handler) — the hook the execution tracer and the
        health registry observe through.  Requires the kernel to have
        been built with its transport.
        """
        if self.transport is None:
            raise ValueError(
                "this ActorKernel has no transport; delivery taps need "
                "ActorKernel(transport)"
            )
        if tap not in self._taps:
            self._taps.append(tap)
        if not self._observing:
            self.transport.add_observer(self._on_delivery)
            self._observing = True
        return tap

    def remove_tap(self, tap: DeliveryTap) -> None:
        if tap in self._taps:
            self._taps.remove(tap)
        if not self._taps and self._observing:
            # The last tap is gone: take the kernel's observer off the
            # delivery path entirely, so a detached tracer/health
            # registry leaves no per-message callback behind.
            self.transport.remove_observer(self._on_delivery)
            self._observing = False

    def _on_delivery(self, message: Message, time_ms: float) -> None:
        for tap in self._taps:
            tap(message, time_ms)

    # Actor registry ---------------------------------------------------------

    def actor_started(self, actor: "Actor") -> None:
        self._actors[f"{actor.host}/{actor.endpoint_name}"] = actor
        self._local_addresses.add((actor.host, actor.endpoint_name))

    def actor_stopped(self, actor: "Actor") -> None:
        self._actors.pop(f"{actor.host}/{actor.endpoint_name}", None)
        self._local_addresses.discard((actor.host, actor.endpoint_name))

    def actors(self) -> "List[Actor]":
        """Every actor currently started on this kernel."""
        return list(self._actors.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ActorKernel {len(self._actors)} actors, "
            f"{len(self.middleware)} middleware, {len(self._taps)} taps>"
        )


class Actor:
    """Base class of every runtime participant.

    Subclasses declare handlers with :func:`handles`, name their
    endpoint via the ``protocol.py`` helpers in :attr:`endpoint_name`,
    and communicate exclusively through :meth:`send`/:meth:`reply` with
    typed envelopes.  Everything else — decoding, unknown-verb and
    malformed-body policy, middleware, lifecycle — is kernel machinery
    shared by all of them.
    """

    #: kind -> handler method name; assembled by ``__init_subclass__``.
    dispatch_table: "Dict[str, str]" = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        table: Dict[str, str] = {}
        for base in reversed(cls.__mro__):
            for name, member in vars(base).items():
                kind = getattr(member, "_handles_kind", None)
                if kind is not None:
                    table[kind] = name
        cls.dispatch_table = table

    def __init__(
        self,
        host: str,
        transport: Transport,
        kernel: Optional[ActorKernel] = None,
    ) -> None:
        self.host = host
        self.transport = transport
        self.kernel = kernel if kernel is not None else ActorKernel()
        self.mailbox = Mailbox(self)
        #: kind -> bound handler; resolved once so dispatch is one dict hit.
        self._handlers: "Dict[str, Callable[[Envelope, Message], None]]" = {
            kind: getattr(self, name)
            for kind, name in self.dispatch_table.items()
        }
        self._started = False

    # Identity ---------------------------------------------------------------

    @property
    def endpoint_name(self) -> str:
        """This actor's endpoint (subclasses use the protocol helpers)."""
        raise NotImplementedError

    @property
    def started(self) -> bool:
        return self._started

    # Lifecycle --------------------------------------------------------------

    def start(self) -> "Actor":
        """Register this actor's mailbox on its host node (idempotent)."""
        if not self._started:
            # The mailbox object itself (callable) is the handler, so
            # the transport's batch path can discover deliver_batch.
            self.transport.node(self.host).register(
                self.endpoint_name, self.mailbox
            )
            self.kernel.actor_started(self)
            self._started = True
        return self

    def stop(self) -> None:
        """Unregister from the host node (idempotent)."""
        if self._started:
            self.transport.node(self.host).unregister(self.endpoint_name)
            self.kernel.actor_stopped(self)
            self._started = False

    def install(self) -> None:
        """v1 lifecycle name; same as :meth:`start`."""
        self.start()

    def uninstall(self) -> None:
        """v1 lifecycle name; same as :meth:`stop`."""
        self.stop()

    # Messaging --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Inbound entry point (the mailbox pipeline, callable directly)."""
        self.mailbox.deliver(message)

    def send(
        self, target: str, target_endpoint: str, envelope: Envelope
    ) -> None:
        """Encode ``envelope`` and put it on the wire from this actor.

        With the kernel's zero-copy fast path on and the target started
        on this same kernel, the frozen envelope rides the message
        as-is and no body dict is built; anything that later asks for
        ``message.body`` (WAL, observers) gets the identical encoding,
        materialised lazily.
        """
        kernel = self.kernel
        if (
            kernel.zero_copy
            and (target, target_endpoint) in kernel._local_addresses
        ):
            message = Message(
                kind=envelope.KIND,
                source=self.host,
                source_endpoint=self.endpoint_name,
                target=target,
                target_endpoint=target_endpoint,
                envelope=envelope,
            )
        else:
            message = Message(
                kind=envelope.KIND,
                source=self.host,
                source_endpoint=self.endpoint_name,
                target=target,
                target_endpoint=target_endpoint,
                body=envelope.to_body(),
            )
        for hook in kernel.send_hooks:
            hook(self, envelope, message)
        self.transport.send(message)

    def reply(self, message: Message, envelope: Envelope) -> None:
        """Send ``envelope`` back to ``message``'s reply address."""
        node, endpoint = message.reply_address()
        self.send(node, endpoint, envelope)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.endpoint_name!r} @ "
            f"{self.host!r})"
        )
