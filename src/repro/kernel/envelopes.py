"""Typed message envelopes: one frozen dataclass per protocol verb.

The seed runtime passed raw dict bodies around, so a misspelled field
(``"execution_id "`` with a stray space, ``"reqest_key"``) travelled the
wire silently and surfaced — if ever — as a default value deep inside a
handler.  Envelopes close that hole: every verb of
:class:`~repro.runtime.protocol.MessageKinds` has exactly one dataclass
here, and the ``to_body()``/``from_body()`` codecs are the *only* places
a protocol body is built or taken apart.  ``from_body`` rejects unknown
fields and wrongly typed values with :class:`~repro.exceptions.EnvelopeError`
— malformed traffic fails loudly at the boundary, not in a handler.

The catalogue (mirror of the ``MessageKinds`` table):

======================  ===================================================
envelope                carried by
======================  ===================================================
:class:`Execute`        client -> composite wrapper: start an execution
:class:`ExecuteAck`     composite wrapper -> client: execution id
:class:`ExecuteResult`  composite wrapper -> client: outcome
:class:`Notify`         coordinator -> coordinator: control-flow token
:class:`Invoke`         coordinator/orchestrator -> wrapper: call operation
:class:`InvokeResult`   wrapper -> caller: operation outcome
:class:`Complete`       final coordinator -> composite wrapper
:class:`ExecutionFault` any coordinator -> composite wrapper: abort
:class:`Signal`         client/coordinator -> wrapper -> coordinators: event
:class:`Discard`        composite wrapper -> coordinator: drop exec state
======================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.exceptions import EnvelopeError, UnknownVerbError
from repro.runtime.protocol import MessageKinds

#: Envelope fields carrying open mappings (variable environments,
#: operation arguments/outputs, event payloads).  Codecs copy them on
#: both encode and decode, so neither side can mutate the other's state
#: through a shared dict.
_MAPPING_FIELDS = frozenset({"env", "arguments", "outputs", "payload"})

#: Envelope fields carrying optional numbers; ``None`` values are
#: omitted from the wire body (the seed protocol never sent them).
_NUMERIC_FIELDS = frozenset({"timeout_ms"})

#: kind -> envelope type; populated by :func:`_register`.
ENVELOPE_TYPES: "Dict[str, Type[Envelope]]" = {}


def _register(cls: "Type[Envelope]") -> "Type[Envelope]":
    """Finalise an envelope class: cache field metadata, index by kind.

    The per-category field sets let :meth:`Envelope.from_body` classify
    each body key with one membership test — the decode runs on the
    coordinator hot path, so it is a single pass over the body.
    """
    names = tuple(f.name for f in fields(cls))
    cls._FIELD_NAMES = names
    cls._FIELD_SET = frozenset(names)
    cls._MAPPING_SET = frozenset(n for n in names if n in _MAPPING_FIELDS)
    cls._NUMERIC_SET = frozenset(n for n in names if n in _NUMERIC_FIELDS)
    cls._SCALAR_SET = (
        cls._FIELD_SET - cls._MAPPING_SET - cls._NUMERIC_SET
    )
    ENVELOPE_TYPES[cls.KIND] = cls
    return cls


@dataclass(frozen=True)
class Envelope:
    """Base of all protocol envelopes: the shared codec machinery.

    Subclasses only declare their fields and ``KIND``; encoding and
    decoding are generic.  All scalar fields are strings, mapping
    fields are listed in ``_MAPPING_FIELDS`` and numeric fields in
    ``_NUMERIC_FIELDS`` — the protocol vocabulary is deliberately that
    small (see ``repro.runtime.protocol``).
    """

    KIND: ClassVar[str] = ""
    #: Identity fields a wire body must carry: decoding without them is
    #: an :class:`EnvelopeError`, not a silent default.  (Other fields
    #: stay optional — the seed protocol tolerated sparse bodies and
    #: handled them gracefully; only identities were ever strict.)
    REQUIRED: ClassVar["Tuple[str, ...]"] = ()
    _FIELD_NAMES: ClassVar["Tuple[str, ...]"] = ()
    _FIELD_SET: ClassVar["frozenset"] = frozenset()
    _MAPPING_SET: ClassVar["frozenset"] = frozenset()
    _NUMERIC_SET: ClassVar["frozenset"] = frozenset()
    _SCALAR_SET: ClassVar["frozenset"] = frozenset()

    def to_body(self) -> "Dict[str, Any]":
        """Encode into the wire body (mappings copied, ``None`` omitted)."""
        body: Dict[str, Any] = {}
        for name in self._FIELD_NAMES:
            value = getattr(self, name)
            if name in _MAPPING_FIELDS:
                value = dict(value)
            elif value is None and name in _NUMERIC_FIELDS:
                continue
            body[name] = value
        return body

    @classmethod
    def from_body(cls, body: "Mapping[str, Any]") -> "Envelope":
        """Decode a wire body; raises :class:`EnvelopeError` when malformed.

        Unknown fields are rejected outright (the silent-typo failure
        mode of dict bodies); absent fields fall back to the envelope's
        declared defaults, preserving the seed protocol's tolerance of
        sparse bodies from older peers.
        """
        if not isinstance(body, Mapping):
            raise EnvelopeError(
                f"{cls.KIND} body must be a mapping, got "
                f"{type(body).__name__}"
            )
        kwargs: Dict[str, Any] = {}
        scalar = cls._SCALAR_SET
        for key, value in body.items():
            if key in scalar:
                if not isinstance(value, str):
                    raise EnvelopeError(
                        f"{cls.KIND}.{key} must be a string, got "
                        f"{type(value).__name__}"
                    )
            elif key in cls._MAPPING_SET:
                if not isinstance(value, Mapping):
                    raise EnvelopeError(
                        f"{cls.KIND}.{key} must be a mapping, got "
                        f"{type(value).__name__}"
                    )
                value = dict(value)
            elif key in cls._NUMERIC_SET:
                if value is not None and (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                ):
                    raise EnvelopeError(
                        f"{cls.KIND}.{key} must be a number or None, got "
                        f"{type(value).__name__}"
                    )
            else:
                raise EnvelopeError(
                    f"{cls.KIND} envelope does not accept field {key!r} "
                    f"(accepted: {sorted(cls._FIELD_SET)})"
                )
            kwargs[key] = value
        for name in cls.REQUIRED:
            if name not in kwargs:
                raise EnvelopeError(
                    f"{cls.KIND} envelope requires field {name!r}"
                )
        return cls(**kwargs)


@_register
@dataclass(frozen=True)
class Execute(Envelope):
    """Start one composite (or any wrapped) execution."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE

    operation: str = ""
    arguments: "Mapping[str, Any]" = field(default_factory=dict)
    request_key: str = ""
    #: Execution deadline enforced by the composite wrapper; ``None``
    #: (omitted on the wire) means the deployment default applies.
    timeout_ms: Optional[float] = None


@_register
@dataclass(frozen=True)
class ExecuteAck(Envelope):
    """The wrapper's immediate acknowledgement carrying the execution id."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE_ACK

    execution_id: str = ""
    request_key: str = ""


@_register
@dataclass(frozen=True)
class ExecuteResult(Envelope):
    """Final outcome of one execution, addressed back to the client."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE_RESULT

    execution_id: str = ""
    status: str = "fault"  # "success" | "fault" | "timeout"
    outputs: "Mapping[str, Any]" = field(default_factory=dict)
    fault: str = ""
    request_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"


@_register
@dataclass(frozen=True)
class Notify(Envelope):
    """A peer-to-peer control-flow token along one routing-table edge.

    The two identity fields are required on the wire: a notify without
    them would create phantom execution state at the receiving
    coordinator (and the seed runtime treated them as strict too).
    """

    KIND: ClassVar[str] = MessageKinds.NOTIFY
    REQUIRED: ClassVar["Tuple[str, ...]"] = ("execution_id", "edge_id")

    execution_id: str = ""
    edge_id: str = ""
    from_node: str = ""
    env: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Invoke(Envelope):
    """Call one operation on a service through its wrapper."""

    KIND: ClassVar[str] = MessageKinds.INVOKE

    invocation_id: str = ""
    execution_id: str = ""
    operation: str = ""
    arguments: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class InvokeResult(Envelope):
    """Outcome of one service invocation, addressed back to the caller."""

    KIND: ClassVar[str] = MessageKinds.INVOKE_RESULT

    invocation_id: str = ""
    execution_id: str = ""
    status: str = "fault"  # "success" | "fault"
    outputs: "Mapping[str, Any]" = field(default_factory=dict)
    fault: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"

    @classmethod
    def outcome(
        cls,
        invocation_id: str,
        execution_id: str,
        ok: bool,
        outputs: "Optional[Mapping[str, Any]]" = None,
        fault: str = "",
    ) -> "InvokeResult":
        """The reply every wrapper builds: status derived from ``ok``."""
        return cls(
            invocation_id=invocation_id,
            execution_id=execution_id,
            status="success" if ok else "fault",
            outputs=dict(outputs or {}),
            fault=fault,
        )


@_register
@dataclass(frozen=True)
class Complete(Envelope):
    """A FINAL coordinator's termination report to the composite wrapper."""

    KIND: ClassVar[str] = MessageKinds.COMPLETE

    execution_id: str = ""
    final_node: str = ""
    env: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class ExecutionFault(Envelope):
    """Any coordinator's abort report to the composite wrapper."""

    KIND: ClassVar[str] = MessageKinds.EXECUTION_FAULT

    execution_id: str = ""
    node: str = ""
    reason: str = ""


@_register
@dataclass(frozen=True)
class Signal(Envelope):
    """An ECA event aimed at a running execution."""

    KIND: ClassVar[str] = MessageKinds.SIGNAL

    execution_id: str = ""
    event: str = ""
    payload: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Discard(Envelope):
    """Garbage-collection broadcast: drop one execution's local state."""

    KIND: ClassVar[str] = MessageKinds.DISCARD

    execution_id: str = ""


def envelope_type(kind: str) -> "Type[Envelope]":
    """The envelope class of ``kind``; raises :class:`UnknownVerbError`."""
    cls = ENVELOPE_TYPES.get(kind)
    if cls is None:
        raise UnknownVerbError(kind)
    return cls


def decode(kind: str, body: "Mapping[str, Any]") -> Envelope:
    """Decode one wire body into its typed envelope."""
    return envelope_type(kind).from_body(body)


def decode_message(message: Any) -> Envelope:
    """Decode a :class:`~repro.net.message.Message` into its envelope."""
    return decode(message.kind, message.body)
