"""Typed message envelopes: one frozen dataclass per protocol verb.

The seed runtime passed raw dict bodies around, so a misspelled field
(``"execution_id "`` with a stray space, ``"reqest_key"``) travelled the
wire silently and surfaced — if ever — as a default value deep inside a
handler.  Envelopes close that hole: every verb of
:class:`~repro.runtime.protocol.MessageKinds` has exactly one dataclass
here, and the ``to_body()``/``from_body()`` codecs are the *only* places
a protocol body is built or taken apart.  ``from_body`` rejects unknown
fields and wrongly typed values with :class:`~repro.exceptions.EnvelopeError`
— malformed traffic fails loudly at the boundary, not in a handler.

Hot-path machinery (``repro.perf``): :func:`_register` finalises each
class at import time —

* the class is rebuilt with ``__slots__`` (python 3.9 has no
  ``dataclass(slots=True)``, so this mirrors what CPython ≥3.10 does
  internally: copy the class dict, drop the field defaults that would
  shadow the slot descriptors, recreate the type);
* ``to_body``/``from_body``/``_wire_size`` are **generated and
  compiled once per verb** — straight-line code with the field names
  inlined, replacing the generic reflective loop that ran on every
  message.  The generated decoder handles only the well-formed common
  case; *any* anomaly (non-dict body, unknown key, wrong type, missing
  required field) falls back to the generic validator on the base
  class, so error messages, sparse-body defaults and copy semantics
  are bit-identical to the reflective implementation.

The catalogue (mirror of the ``MessageKinds`` table):

======================  ===================================================
envelope                carried by
======================  ===================================================
:class:`Execute`        client -> composite wrapper: start an execution
:class:`ExecuteAck`     composite wrapper -> client: execution id
:class:`ExecuteResult`  composite wrapper -> client: outcome
:class:`Notify`         coordinator -> coordinator: control-flow token
:class:`Invoke`         coordinator/orchestrator -> wrapper: call operation
:class:`InvokeResult`   wrapper -> caller: operation outcome
:class:`Complete`       final coordinator -> composite wrapper
:class:`ExecutionFault` any coordinator -> composite wrapper: abort
:class:`Signal`         client/coordinator -> wrapper -> coordinators: event
:class:`Discard`        composite wrapper -> coordinator: drop exec state
======================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.exceptions import EnvelopeError, UnknownVerbError
from repro.net.message import _estimate_size
from repro.runtime.protocol import MessageKinds

#: Envelope fields carrying open mappings (variable environments,
#: operation arguments/outputs, event payloads).  Codecs copy them on
#: both encode and decode, so neither side can mutate the other's state
#: through a shared dict.
_MAPPING_FIELDS = frozenset({"env", "arguments", "outputs", "payload"})

#: Envelope fields carrying optional numbers; ``None`` values are
#: omitted from the wire body (the seed protocol never sent them).
_NUMERIC_FIELDS = frozenset({"timeout_ms"})

#: kind -> envelope type; populated by :func:`_register`.
ENVELOPE_TYPES: "Dict[str, Type[Envelope]]" = {}

#: Sentinel distinguishing "key absent" from any real body value.
_MISS = object()


def _add_slots(cls: type) -> type:
    """Rebuild a decorated dataclass with ``__slots__``.

    ``dataclass(slots=True)`` needs python ≥3.10 and the CI matrix
    includes 3.9, so this replicates the stdlib's approach: the field
    defaults stored as class attributes must be removed from the class
    dict (they would shadow the slot descriptors), then the type is
    recreated with ``__slots__`` naming every field.
    """
    field_names = tuple(f.name for f in fields(cls))
    cls_dict = dict(cls.__dict__)
    cls_dict["__slots__"] = field_names
    for name in field_names:
        cls_dict.pop(name, None)
    cls_dict.pop("__dict__", None)
    cls_dict.pop("__weakref__", None)
    qualname = getattr(cls, "__qualname__", None)
    new_cls = type(cls)(cls.__name__, cls.__bases__, cls_dict)
    if qualname is not None:
        new_cls.__qualname__ = qualname
    return new_cls


def _compile_codecs(cls: "Type[Envelope]") -> None:
    """Generate and attach the straight-line codec trio for ``cls``.

    Exactly the technique the stdlib uses for dataclass ``__init__``:
    build source text with the field names inlined, ``exec`` it once,
    and bind the resulting functions on the class.  Per-field dispatch
    then costs an attribute load and a type check instead of a loop
    over reflection metadata.
    """
    spec = []  # (name, category, default expression)
    for f in fields(cls):
        if f.name in _MAPPING_FIELDS:
            spec.append((f.name, "mapping", "{}"))
        elif f.name in _NUMERIC_FIELDS:
            spec.append((f.name, "numeric", "None"))
        else:
            spec.append((f.name, "scalar", repr(f.default)))
    required = set(cls.REQUIRED)

    enc = ["def to_body(self):", "    body = {}"]
    size = ["def _wire_size(self):", "    n = 7"]
    dec = [
        "def from_body(body):",
        "    if body.__class__ is not dict:",
        "        return _generic(cls, body)",
        "    found = 0",
    ]
    for name, category, default in spec:
        if category == "mapping":
            enc.append(f"    body[{name!r}] = dict(self.{name})")
            size.append(f"    n += {len(name)} + _estimate_size(self.{name})")
        elif category == "numeric":
            enc.append(f"    v = self.{name}")
            enc.append("    if v is not None:")
            enc.append(f"        body[{name!r}] = v")
            size.append(f"    v = self.{name}")
            size.append("    if v is not None:")
            size.append(f"        n += {len(name)} + _estimate_size(v)")
        else:
            enc.append(f"    body[{name!r}] = self.{name}")
            size.append(f"    v = self.{name}")
            size.append(
                f"    n += {len(name)} + "
                "(7 + len(v) if v.__class__ is str else _estimate_size(v))"
            )
        dec.append(f"    v = body.get({name!r}, _MISS)")
        dec.append("    if v is _MISS:")
        if name in required:
            # Generic path raises the exact "requires field" error.
            dec.append("        return _generic(cls, body)")
        else:
            dec.append(f"        f_{name} = {default}")
        if category == "scalar":
            dec.append("    elif v.__class__ is str:")
            dec.append(f"        f_{name} = v; found += 1")
        elif category == "mapping":
            dec.append("    elif v.__class__ is dict:")
            dec.append(f"        f_{name} = dict(v); found += 1")
        else:  # numeric: int/float but never bool, or None
            dec.append(
                "    elif v is None or v.__class__ is float "
                "or v.__class__ is int:"
            )
            dec.append(f"        f_{name} = v; found += 1")
        # Wrong type, str/Mapping subclass, or anything exotic: the
        # generic validator either raises the canonical error or
        # accepts the unusual-but-legal value.
        dec.append("    else:")
        dec.append("        return _generic(cls, body)")
    enc.append("    return body")
    size.append("    return n")
    # found < len(body) means an unknown key is present (every known
    # key was matched at most once); let the generic path name it.
    dec.append("    if found != len(body):")
    dec.append("        return _generic(cls, body)")
    dec.append("    self = _new(cls)")
    for name, _category, _default in spec:
        dec.append(f"    _set(self, {name!r}, f_{name})")
    dec.append("    return self")

    namespace = {
        "cls": cls,
        "_MISS": _MISS,
        "_new": object.__new__,
        "_set": object.__setattr__,
        "_generic": _generic_from_body,
        "_estimate_size": _estimate_size,
    }
    exec(  # noqa: S102 - compile-once codegen, same idiom as dataclasses
        "\n".join(enc) + "\n\n" + "\n".join(size) + "\n\n" + "\n".join(dec),
        namespace,
    )
    cls.to_body = namespace["to_body"]
    cls._wire_size = namespace["_wire_size"]
    cls.from_body = staticmethod(namespace["from_body"])


def _register(cls: "Type[Envelope]") -> "Type[Envelope]":
    """Finalise an envelope class: slots, codecs, field metadata, index.

    The per-category field sets let :func:`_generic_from_body` classify
    each body key with one membership test; the generated fast decoder
    (see :func:`_compile_codecs`) handles the well-formed common case
    without touching them.
    """
    cls = _add_slots(cls)
    names = tuple(f.name for f in fields(cls))
    cls._FIELD_NAMES = names
    cls._FIELD_SET = frozenset(names)
    cls._MAPPING_SET = frozenset(n for n in names if n in _MAPPING_FIELDS)
    cls._NUMERIC_SET = frozenset(n for n in names if n in _NUMERIC_FIELDS)
    cls._SCALAR_SET = (
        cls._FIELD_SET - cls._MAPPING_SET - cls._NUMERIC_SET
    )
    _compile_codecs(cls)
    ENVELOPE_TYPES[cls.KIND] = cls
    return cls


def _generic_from_body(
    cls: "Type[Envelope]", body: "Mapping[str, Any]"
) -> "Envelope":
    """Decode a wire body; raises :class:`EnvelopeError` when malformed.

    Unknown fields are rejected outright (the silent-typo failure
    mode of dict bodies); absent fields fall back to the envelope's
    declared defaults, preserving the seed protocol's tolerance of
    sparse bodies from older peers.  This is the reference semantics;
    the generated fast decoders defer here for every anomaly.
    """
    if not isinstance(body, Mapping):
        raise EnvelopeError(
            f"{cls.KIND} body must be a mapping, got "
            f"{type(body).__name__}"
        )
    kwargs: Dict[str, Any] = {}
    scalar = cls._SCALAR_SET
    for key, value in body.items():
        if key in scalar:
            if not isinstance(value, str):
                raise EnvelopeError(
                    f"{cls.KIND}.{key} must be a string, got "
                    f"{type(value).__name__}"
                )
        elif key in cls._MAPPING_SET:
            if not isinstance(value, Mapping):
                raise EnvelopeError(
                    f"{cls.KIND}.{key} must be a mapping, got "
                    f"{type(value).__name__}"
                )
            value = dict(value)
        elif key in cls._NUMERIC_SET:
            if value is not None and (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                raise EnvelopeError(
                    f"{cls.KIND}.{key} must be a number or None, got "
                    f"{type(value).__name__}"
                )
        else:
            raise EnvelopeError(
                f"{cls.KIND} envelope does not accept field {key!r} "
                f"(accepted: {sorted(cls._FIELD_SET)})"
            )
        kwargs[key] = value
    for name in cls.REQUIRED:
        if name not in kwargs:
            raise EnvelopeError(
                f"{cls.KIND} envelope requires field {name!r}"
            )
    return cls(**kwargs)


@dataclass(frozen=True)
class Envelope:
    """Base of all protocol envelopes: the shared codec machinery.

    Subclasses only declare their fields and ``KIND``; encoding and
    decoding are attached by :func:`_register` as compiled per-verb
    functions.  All scalar fields are strings, mapping fields are
    listed in ``_MAPPING_FIELDS`` and numeric fields in
    ``_NUMERIC_FIELDS`` — the protocol vocabulary is deliberately that
    small (see ``repro.runtime.protocol``).
    """

    __slots__ = ()

    KIND: ClassVar[str] = ""
    #: Identity fields a wire body must carry: decoding without them is
    #: an :class:`EnvelopeError`, not a silent default.  (Other fields
    #: stay optional — the seed protocol tolerated sparse bodies and
    #: handled them gracefully; only identities were ever strict.)
    REQUIRED: ClassVar["Tuple[str, ...]"] = ()
    _FIELD_NAMES: ClassVar["Tuple[str, ...]"] = ()
    _FIELD_SET: ClassVar["frozenset"] = frozenset()
    _MAPPING_SET: ClassVar["frozenset"] = frozenset()
    _NUMERIC_SET: ClassVar["frozenset"] = frozenset()
    _SCALAR_SET: ClassVar["frozenset"] = frozenset()

    def to_body(self) -> "Dict[str, Any]":
        """Encode into the wire body (mappings copied, ``None`` omitted).

        Registered envelopes get a compiled override; this generic
        loop serves ad-hoc subclasses (e.g. in tests).
        """
        body: Dict[str, Any] = {}
        for name in self._FIELD_NAMES:
            value = getattr(self, name)
            if name in _MAPPING_FIELDS:
                value = dict(value)
            elif value is None and name in _NUMERIC_FIELDS:
                continue
            body[name] = value
        return body

    def _wire_size(self) -> int:
        """Estimated XML size of the encoded body (see Message.size_bytes).

        Registered envelopes get a compiled override that answers
        without building the dict.
        """
        return _estimate_size(self.to_body())

    @classmethod
    def from_body(cls, body: "Mapping[str, Any]") -> "Envelope":
        """Decode a wire body; raises :class:`EnvelopeError` when malformed."""
        return _generic_from_body(cls, body)


@_register
@dataclass(frozen=True)
class Execute(Envelope):
    """Start one composite (or any wrapped) execution."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE

    operation: str = ""
    arguments: "Mapping[str, Any]" = field(default_factory=dict)
    request_key: str = ""
    #: Execution deadline enforced by the composite wrapper; ``None``
    #: (omitted on the wire) means the deployment default applies.
    timeout_ms: Optional[float] = None


@_register
@dataclass(frozen=True)
class ExecuteAck(Envelope):
    """The wrapper's immediate acknowledgement carrying the execution id."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE_ACK

    execution_id: str = ""
    request_key: str = ""


@_register
@dataclass(frozen=True)
class ExecuteResult(Envelope):
    """Final outcome of one execution, addressed back to the client."""

    KIND: ClassVar[str] = MessageKinds.EXECUTE_RESULT

    execution_id: str = ""
    status: str = "fault"  # "success" | "fault" | "timeout"
    outputs: "Mapping[str, Any]" = field(default_factory=dict)
    fault: str = ""
    request_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"


@_register
@dataclass(frozen=True)
class Notify(Envelope):
    """A peer-to-peer control-flow token along one routing-table edge.

    The two identity fields are required on the wire: a notify without
    them would create phantom execution state at the receiving
    coordinator (and the seed runtime treated them as strict too).
    """

    KIND: ClassVar[str] = MessageKinds.NOTIFY
    REQUIRED: ClassVar["Tuple[str, ...]"] = ("execution_id", "edge_id")

    execution_id: str = ""
    edge_id: str = ""
    from_node: str = ""
    env: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Invoke(Envelope):
    """Call one operation on a service through its wrapper."""

    KIND: ClassVar[str] = MessageKinds.INVOKE

    invocation_id: str = ""
    execution_id: str = ""
    operation: str = ""
    arguments: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class InvokeResult(Envelope):
    """Outcome of one service invocation, addressed back to the caller."""

    KIND: ClassVar[str] = MessageKinds.INVOKE_RESULT

    invocation_id: str = ""
    execution_id: str = ""
    status: str = "fault"  # "success" | "fault"
    outputs: "Mapping[str, Any]" = field(default_factory=dict)
    fault: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"

    @classmethod
    def outcome(
        cls,
        invocation_id: str,
        execution_id: str,
        ok: bool,
        outputs: "Optional[Mapping[str, Any]]" = None,
        fault: str = "",
    ) -> "InvokeResult":
        """The reply every wrapper builds: status derived from ``ok``."""
        return cls(
            invocation_id=invocation_id,
            execution_id=execution_id,
            status="success" if ok else "fault",
            outputs=dict(outputs or {}),
            fault=fault,
        )


@_register
@dataclass(frozen=True)
class Complete(Envelope):
    """A FINAL coordinator's termination report to the composite wrapper."""

    KIND: ClassVar[str] = MessageKinds.COMPLETE

    execution_id: str = ""
    final_node: str = ""
    env: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class ExecutionFault(Envelope):
    """Any coordinator's abort report to the composite wrapper."""

    KIND: ClassVar[str] = MessageKinds.EXECUTION_FAULT

    execution_id: str = ""
    node: str = ""
    reason: str = ""


@_register
@dataclass(frozen=True)
class Signal(Envelope):
    """An ECA event aimed at a running execution."""

    KIND: ClassVar[str] = MessageKinds.SIGNAL

    execution_id: str = ""
    event: str = ""
    payload: "Mapping[str, Any]" = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Discard(Envelope):
    """Garbage-collection broadcast: drop one execution's local state."""

    KIND: ClassVar[str] = MessageKinds.DISCARD

    execution_id: str = ""


def envelope_type(kind: str) -> "Type[Envelope]":
    """The envelope class of ``kind``; raises :class:`UnknownVerbError`."""
    cls = ENVELOPE_TYPES.get(kind)
    if cls is None:
        raise UnknownVerbError(kind)
    return cls


def decode(kind: str, body: "Mapping[str, Any]") -> Envelope:
    """Decode one wire body into its typed envelope."""
    return envelope_type(kind).from_body(body)


def decode_message(message: Any) -> Envelope:
    """Decode a :class:`~repro.net.message.Message` into its envelope."""
    return decode(message.kind, message.body)
