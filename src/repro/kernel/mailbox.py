"""The kernel's delivery layer: one :class:`Mailbox` per actor.

A mailbox is what the transport actually delivers to.  It owns the full
inbound pipeline — decode the body into its typed envelope, drop unknown
verbs (as a socket server would) and malformed bodies (counted, and
reported through the middleware chain), run the middleware hooks, then
dispatch to the handler the actor's verb table names.  Because the
pipeline lives here and not in each actor, the exact same actor code
runs unchanged on :class:`~repro.net.simnet.SimTransport` and
:class:`~repro.net.inproc.InProcTransport`; per-coordinator *decision*
structures (the PR 3 :class:`~repro.perf.CoordinatorDispatch` fast path)
remain a dispatch strategy plugged in beneath the handler, untouched by
this layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.exceptions import ProtocolError
from repro.kernel.envelopes import ENVELOPE_TYPES
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.actor import Actor


class Mailbox:
    """Inbound pipeline of one actor: decode -> middleware -> dispatch."""

    __slots__ = ("actor", "delivered", "handled", "unknown_verbs",
                 "malformed")

    def __init__(self, actor: "Actor") -> None:
        self.actor = actor
        #: Messages the transport handed to this mailbox.
        self.delivered = 0
        #: Messages that reached a handler (and did not raise).
        self.handled = 0
        #: Messages dropped because no handler claims their verb.
        self.unknown_verbs = 0
        #: Messages dropped because their body failed envelope decoding.
        self.malformed = 0

    def deliver(self, message: Message) -> None:
        """Process one delivered message end to end."""
        self.delivered += 1
        actor = self.actor
        handler = actor._handlers.get(message.kind)
        if handler is None:
            # Unknown verbs are dropped silently, as a socket server
            # would drop an unrecognised request — but counted, so a
            # misconfigured peer is visible in diagnostics.
            self.unknown_verbs += 1
            return
        kernel = actor.kernel
        try:
            # A claimed verb always has an envelope (the dispatch table
            # is keyed by envelope KINDs), so index the registry directly.
            envelope = ENVELOPE_TYPES[message.kind].from_body(message.body)
        except ProtocolError as exc:
            self.malformed += 1
            for hook in kernel.malformed_hooks:
                hook(actor, message, exc)
            return
        # Hook lists hold only the middlewares that override each hook
        # (see ActorKernel._rebuild_hooks); after_hooks is pre-reversed.
        before = kernel.before_hooks
        after = kernel.after_hooks
        if before or after:
            for hook in before:
                hook(actor, envelope, message)
            error: Optional[BaseException] = None
            try:
                handler(envelope, message)
            except BaseException as exc:
                error = exc
                raise
            finally:
                for hook in after:
                    hook(actor, envelope, message, error)
        else:
            handler(envelope, message)
        self.handled += 1
