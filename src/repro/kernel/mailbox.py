"""The kernel's delivery layer: one :class:`Mailbox` per actor.

A mailbox is what the transport actually delivers to.  It owns the full
inbound pipeline — decode the body into its typed envelope, drop unknown
verbs (as a socket server would) and malformed bodies (counted, and
reported through the middleware chain), run the middleware hooks, then
dispatch to the handler the actor's verb table names.  Because the
pipeline lives here and not in each actor, the exact same actor code
runs unchanged on :class:`~repro.net.simnet.SimTransport` and
:class:`~repro.net.inproc.InProcTransport`; per-coordinator *decision*
structures (the PR 3 :class:`~repro.perf.CoordinatorDispatch` fast path)
remain a dispatch strategy plugged in beneath the handler, untouched by
this layer.

Two hot-path entrances (``repro.perf``):

* **zero-copy acceptance** — a message carrying its typed envelope
  (the kernel's opt-in in-proc fast path, see
  :meth:`~repro.kernel.actor.Actor.send`) skips decoding entirely; the
  envelope is frozen, so sharing it between sender and receiver is
  safe;
* :meth:`deliver_batch` — a transport drain window hands a whole run
  of messages over in one call, letting batch-aware middlewares (the
  kernel counters) aggregate their work per window instead of per
  message.  Per-message hooks that carry ordering semantics (the
  durability log's ``before_handle``) still fire once per message, in
  delivery order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.exceptions import ProtocolError
from repro.kernel.envelopes import ENVELOPE_TYPES
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.actor import Actor


class Mailbox:
    """Inbound pipeline of one actor: decode -> middleware -> dispatch."""

    __slots__ = ("actor", "delivered", "handled", "unknown_verbs",
                 "malformed")

    def __init__(self, actor: "Actor") -> None:
        self.actor = actor
        #: Messages the transport handed to this mailbox.
        self.delivered = 0
        #: Messages that reached a handler (and did not raise).
        self.handled = 0
        #: Messages dropped because no handler claims their verb.
        self.unknown_verbs = 0
        #: Messages dropped because their body failed envelope decoding.
        self.malformed = 0

    def deliver(self, message: Message) -> None:
        """Process one delivered message end to end."""
        self.delivered += 1
        actor = self.actor
        kind = message.kind
        handler = actor._handlers.get(kind)
        if handler is None:
            # Unknown verbs are dropped silently, as a socket server
            # would drop an unrecognised request — but counted, so a
            # misconfigured peer is visible in diagnostics.
            self.unknown_verbs += 1
            return
        kernel = actor.kernel
        envelope = message.envelope
        if envelope is None or envelope.KIND != kind:
            try:
                # A claimed verb always has an envelope (the dispatch
                # table is keyed by envelope KINDs), so index the
                # registry directly.
                envelope = ENVELOPE_TYPES[kind].from_body(message.body)
            except ProtocolError as exc:
                self.malformed += 1
                for hook in kernel.malformed_hooks:
                    hook(actor, message, exc)
                return
        # Hook lists hold only the middlewares that override each hook
        # (see ActorKernel._rebuild_hooks); after_hooks is pre-reversed.
        before = kernel.before_hooks
        after = kernel.after_hooks
        if before or after:
            for hook in before:
                hook(actor, envelope, message)
            error: Optional[BaseException] = None
            try:
                handler(envelope, message)
            except BaseException as exc:
                error = exc
                raise
            finally:
                for hook in after:
                    hook(actor, envelope, message, error)
        else:
            handler(envelope, message)
        self.handled += 1

    # The mailbox itself is registered as the endpoint handler, so the
    # transport's per-message path calls it directly...
    __call__ = deliver

    # ...and the batch path discovers this richer entry point.
    def deliver_batch(self, messages: "List[Message]") -> None:
        """Process one drain window of messages addressed to this actor.

        Identical per-message semantics to :meth:`deliver` — same
        decode, same unknown-verb/malformed policy, same per-message
        ``before_handle``/``after_handle`` hooks in the same order —
        except that *batch-aware* middlewares (those overriding
        ``after_handle_batch``) get one aggregated call per window in
        place of their per-message ``after_handle``.  A handler
        exception propagates exactly as on the per-message path; the
        aggregated tallies accumulated so far are flushed first, so
        counters never lose the window's completed work.
        """
        self.delivered += len(messages)
        actor = self.actor
        handlers = actor._handlers
        kernel = actor.kernel
        before = kernel.before_hooks
        after = kernel.unbatched_after_hooks
        batch_hooks = kernel.batch_after_hooks
        malformed_hooks = kernel.malformed_hooks
        envelope_types = ENVELOPE_TYPES
        tallies: "Optional[dict]" = {} if batch_hooks else None
        # Successes are tallied run-length: windows are usually
        # homogeneous in verb, so the happy path pays one dict update
        # per kind *run*, not per message — the difference between the
        # default counters costing ~1.3x and costing nothing.
        run_kind: "Optional[str]" = None
        run_ok = 0
        handled = 0
        try:
            for message in messages:
                kind = message.kind
                handler = handlers.get(kind)
                if handler is None:
                    self.unknown_verbs += 1
                    continue
                envelope = message.envelope
                if envelope is None or envelope.KIND != kind:
                    try:
                        envelope = envelope_types[kind].from_body(
                            message.body
                        )
                    except ProtocolError as exc:
                        self.malformed += 1
                        for hook in malformed_hooks:
                            hook(actor, message, exc)
                        continue
                for hook in before:
                    hook(actor, envelope, message)
                if after:
                    error: Optional[BaseException] = None
                    try:
                        handler(envelope, message)
                    except BaseException as exc:
                        error = exc
                        raise
                    finally:
                        for hook in after:
                            hook(actor, envelope, message, error)
                        if error is not None and tallies is not None:
                            tally = tallies.setdefault(kind, [0, 0])
                            tally[1] += 1
                else:
                    if tallies is None:
                        handler(envelope, message)
                    else:
                        try:
                            handler(envelope, message)
                        except BaseException:
                            tallies.setdefault(kind, [0, 0])[1] += 1
                            raise
                handled += 1
                if kind == run_kind:
                    run_ok += 1
                elif tallies is not None:
                    if run_ok:
                        tallies.setdefault(run_kind, [0, 0])[0] += run_ok
                    run_kind = kind
                    run_ok = 1
        finally:
            self.handled += handled
            if tallies is not None:
                if run_ok:
                    tallies.setdefault(run_kind, [0, 0])[0] += run_ok
                if tallies:
                    endpoint = messages[0].target_endpoint
                    for hook in batch_hooks:
                        hook(actor, endpoint, tallies)
