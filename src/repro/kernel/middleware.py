"""The kernel middleware chain: how cross-cutting concerns observe actors.

Before the kernel, every subsystem that wanted to watch execution
threaded its own tap through individual runtime components — the tracer
attached its own transport observer, the health registry attached
another, perf counters lived inside whichever actor happened to count.
The kernel replaces that with one chain: every actor's deliveries,
handler invocations, sends and decode failures flow through the
:class:`ActorMiddleware` hooks of its :class:`~repro.kernel.ActorKernel`,
so a new concern observes *all* actors by registering one object.

Two hook families:

* **actor hooks** (``before_handle``/``after_handle``/``on_send``/
  ``on_malformed``) fire on the actor's own dispatch path — this is
  where per-actor counters live;
* **delivery taps** (:meth:`~repro.kernel.ActorKernel.add_tap`) fan the
  transport's delivery stream out through one kernel-owned observer —
  this is where the passive subsystems (execution tracer, health
  registry) plug in without each attaching to the transport themselves.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.kernel.envelopes import Envelope
from repro.net.message import Message


class ActorMiddleware:
    """Base middleware: every hook is a no-op.

    ``before_handle`` hooks run in registration order, ``after_handle``
    in reverse (innermost middleware sees the handler's outcome first,
    like nested decorators).  Hooks must not mutate envelopes or
    messages — the chain observes, it does not rewrite.
    """

    def before_handle(
        self, actor: Any, envelope: Envelope, message: Message
    ) -> None:
        """About to run the actor's handler for ``envelope``."""

    def after_handle(
        self,
        actor: Any,
        envelope: Envelope,
        message: Message,
        error: Optional[BaseException] = None,
    ) -> None:
        """Handler finished; ``error`` is the exception it raised, if any."""

    def on_send(
        self, actor: Any, envelope: Envelope, message: Message
    ) -> None:
        """``actor`` is putting ``message`` (encoding ``envelope``) on the wire."""

    def on_malformed(
        self, actor: Any, message: Message, error: BaseException
    ) -> None:
        """A delivered body failed envelope decoding and was dropped."""

    def after_handle_batch(
        self, actor: Any, endpoint: str, tallies: "Dict[str, list]"
    ) -> None:
        """One mailbox drain window finished at ``endpoint``.

        ``tallies`` maps each verb handled in the window to a
        ``[handled, errored]`` pair.  A middleware that overrides this
        hook is *batch-aware*: on the batch drain path it receives one
        aggregated call per window **instead of** its per-message
        :meth:`after_handle` calls (which still fire on the unbatched
        path).  Middlewares that need per-message ordering — the
        durability log, tracers — simply don't override this and keep
        their exact per-message hooks on both paths.
        """


class KernelCounters(ActorMiddleware):
    """Uniform per-actor, per-verb counters — the kernel's perf tap.

    Installed by default on every :class:`~repro.kernel.ActorKernel`, so
    any actor's traffic shape can be read without instrumenting the
    actor itself (the counters the seed runtime kept ad hoc on
    individual wrappers).  Keys are ``(endpoint_name, kind)``.
    """

    def __init__(self, thread_safe: bool = True) -> None:
        self.handled: "Dict[Tuple[str, str], int]" = {}
        self.sent: "Dict[Tuple[str, str], int]" = {}
        self.errors: "Dict[Tuple[str, str], int]" = {}
        self.malformed: "Dict[str, int]" = {}
        # Malformed envelopes keyed (endpoint, verb, "sender_node/
        # sender_endpoint"): the per-endpoint total above loses exactly
        # the context a quarantine path needs — *which* verb from *whom*
        # failed to decode.
        self.malformed_detail: "Dict[Tuple[str, str, str], int]" = {}
        # One kernel's counters are shared by every actor on it.  On a
        # transport with concurrent delivery (one dispatcher thread per
        # node), two nodes' increments race — a plain dict
        # read-modify-write is not atomic — so those kernels pass
        # ``thread_safe=True``.  The simulator dispatches on one thread
        # and skips the lock entirely (it is on the firing hot path).
        self._lock = threading.Lock() if thread_safe else None

    def after_handle(
        self,
        actor: Any,
        envelope: Envelope,
        message: Message,
        error: Optional[BaseException] = None,
    ) -> None:
        # The message's own endpoint fields are the actor's identity on
        # this path; reading them avoids re-rendering endpoint_name (a
        # formatted property on some actors) on the hot path.
        key = (message.target_endpoint, message.kind)
        lock = self._lock
        if lock is None:
            if error is None:
                self.handled[key] = self.handled.get(key, 0) + 1
            else:
                self.errors[key] = self.errors.get(key, 0) + 1
            return
        with lock:
            if error is None:
                self.handled[key] = self.handled.get(key, 0) + 1
            else:
                self.errors[key] = self.errors.get(key, 0) + 1

    def on_send(
        self, actor: Any, envelope: Envelope, message: Message
    ) -> None:
        key = (message.source_endpoint, message.kind)
        lock = self._lock
        if lock is None:
            self.sent[key] = self.sent.get(key, 0) + 1
            return
        with lock:
            self.sent[key] = self.sent.get(key, 0) + 1

    def on_malformed(
        self, actor: Any, message: Message, error: BaseException
    ) -> None:
        endpoint = actor.endpoint_name
        detail = (
            endpoint,
            message.kind,
            f"{message.source}/{message.source_endpoint}",
        )
        lock = self._lock
        if lock is None:
            self.malformed[endpoint] = self.malformed.get(endpoint, 0) + 1
            self.malformed_detail[detail] = (
                self.malformed_detail.get(detail, 0) + 1
            )
            return
        with lock:
            self.malformed[endpoint] = self.malformed.get(endpoint, 0) + 1
            self.malformed_detail[detail] = (
                self.malformed_detail.get(detail, 0) + 1
            )

    def after_handle_batch(
        self, actor: Any, endpoint: str, tallies: "Dict[str, list]"
    ) -> None:
        """Batch-aggregated increments: one lock, one dict hit per verb.

        This is what kills the per-message counters tax on drained
        windows — a window of N notifies costs two increments total
        instead of N lock/increment round-trips.
        """
        handled = self.handled
        errors = self.errors
        lock = self._lock
        if lock is None:
            for kind, (ok, err) in tallies.items():
                key = (endpoint, kind)
                if ok:
                    handled[key] = handled.get(key, 0) + ok
                if err:
                    errors[key] = errors.get(key, 0) + err
            return
        with lock:
            for kind, (ok, err) in tallies.items():
                key = (endpoint, kind)
                if ok:
                    handled[key] = handled.get(key, 0) + ok
                if err:
                    errors[key] = errors.get(key, 0) + err

    # Queries ----------------------------------------------------------------

    def handled_total(self, endpoint: Optional[str] = None) -> int:
        return sum(
            count for (ep, _), count in self.handled.items()
            if endpoint is None or ep == endpoint
        )

    def sent_total(self, endpoint: Optional[str] = None) -> int:
        return sum(
            count for (ep, _), count in self.sent.items()
            if endpoint is None or ep == endpoint
        )

    def by_verb(self) -> "Dict[str, int]":
        """Handled messages aggregated over actors, keyed by verb."""
        totals: Dict[str, int] = {}
        for (_, kind), count in self.handled.items():
            totals[kind] = totals.get(kind, 0) + count
        return totals

    def clear(self) -> None:
        self.handled.clear()
        self.sent.clear()
        self.errors.clear()
        self.malformed.clear()
        self.malformed_detail.clear()
