"""``repro.kernel`` — the unified actor substrate (PR 4).

Every runtime participant — coordinators, the three wrapper variants,
the end-user client, and the central baseline orchestrator — is an
:class:`Actor` on this kernel: typed :mod:`envelopes
<repro.kernel.envelopes>` instead of raw dict bodies, a declarative
verb -> handler dispatch table instead of hand-rolled ``if``-chains, a
kernel-owned :class:`Mailbox` as the delivery point, and one
:class:`middleware <repro.kernel.middleware.ActorMiddleware>` chain
through which tracing, health tracking and perf counters observe every
actor identically.

See ``docs/ARCHITECTURE.md`` ("Kernel & actor model") for the guided
tour.
"""

from repro.kernel.actor import (
    Actor,
    ActorKernel,
    handles,
    subscribe_deliveries,
)
from repro.kernel.envelopes import (
    ENVELOPE_TYPES,
    Complete,
    Discard,
    Envelope,
    Execute,
    ExecuteAck,
    ExecuteResult,
    ExecutionFault,
    Invoke,
    InvokeResult,
    Notify,
    Signal,
    decode,
    decode_message,
    envelope_type,
)
from repro.kernel.mailbox import Mailbox
from repro.kernel.middleware import ActorMiddleware, KernelCounters

__all__ = [
    "Actor",
    "ActorKernel",
    "ActorMiddleware",
    "Complete",
    "Discard",
    "ENVELOPE_TYPES",
    "Envelope",
    "Execute",
    "ExecuteAck",
    "ExecuteResult",
    "ExecutionFault",
    "Invoke",
    "InvokeResult",
    "KernelCounters",
    "Mailbox",
    "Notify",
    "Signal",
    "decode",
    "decode_message",
    "envelope_type",
    "handles",
    "subscribe_deliveries",
]
