#!/usr/bin/env python
"""Service communities: dynamic membership, selection and failover.

A community delegates each request to one member using "the parameters
of the request, the characteristics of the members, the history of past
executions and the status of ongoing executions" (paper §2).  This
example books accommodation through the demo's community while members
degrade, fail and recover — and shows the selection policy reacting.

Run:  python examples/community_failover.py
"""

from repro import Platform
from repro.demo.travel import deploy_travel_scenario


ARGS = {"customer": "Dana", "destination": "melbourne",
        "departure_date": "2026-08-01", "return_date": "2026-08-05"}


def book(session, deployed, label):
    result = session.execute(deployed.address, "arrangeTrip", dict(ARGS),
                             timeout_ms=600_000)
    picked = (result.outputs.get("accommodation_ref") or "?").split("-")[0]
    print(f"  {label:<36} -> {result.status:<8} via {picked}")
    return result


def main() -> None:
    platform = Platform()
    transport = platform.transport
    deployed = deploy_travel_scenario(
        platform.deployer, community_policy="multi-attribute",
    )
    session = platform.session("dana", "dana-laptop")
    community = deployed.scenario.community
    wrapper = deployed.community_wrapper

    print("accommodation community members:")
    for member in community.members():
        profile = member.profile
        print(f"  {member.service_name:<20} latency≈"
              f"{profile.latency_mean_ms:>5.0f}ms cost={profile.cost} "
              f"reliability={profile.reliability}")
    print()

    print("1) normal operation (multi-attribute selection):")
    for attempt in range(3):
        book(session, deployed, f"booking #{attempt + 1}")
    print()

    print("2) the fast member's host dies — timeout-driven failover:")
    transport.fail_node("host-globalstay")
    book(session, deployed, "booking with GlobalStay down")
    print(f"  failovers so far: {wrapper.failovers}")
    print()

    print("3) a second host dies — only BudgetBeds remains:")
    transport.fail_node("host-sunlodge")
    book(session, deployed, "booking with two members down")
    print()

    print("4) membership is dynamic — suspend the last member:")
    community.suspend("BudgetBedsBooking")
    result = book(session, deployed, "booking with no active members")
    assert result.status == "fault"
    print()

    print("5) hosts recover, membership restored:")
    community.resume("BudgetBedsBooking")
    transport.recover_node("host-globalstay")
    transport.recover_node("host-sunlodge")
    result = book(session, deployed, "booking after recovery")
    assert result.ok
    print()

    print("community execution history (feeds future selections):")
    for name, stats in sorted(wrapper.history.snapshot().items()):
        print(f"  {name:<20} ok={stats['successes']:<3.0f} "
              f"fail={stats['failures']:<3.0f} "
              f"mean={stats['mean_duration_ms']:.0f}ms")


if __name__ == "__main__":
    main()
