#!/usr/bin/env python
"""Locating and executing services (paper §4, Figure 3).

Walks the Search panel flows: search the UDDI registry by provider, by
service name and by operation; browse providers -> services ->
operations; view a service's detail (WSDL-derived); then hit Execute on
the travel composite, exactly as the demo's end user does.

Run:  python examples/locate_and_execute.py
"""

from repro import ServiceManager, SimTransport
from repro.demo.travel import deploy_travel_scenario


def main() -> None:
    transport = SimTransport()
    manager = ServiceManager(transport)

    # Providers deploy; then every service is published in the UDDI
    # registry (WSDL placed at a public URL + business/service/binding).
    deployed = deploy_travel_scenario(manager.deployer)
    for service in deployed.scenario.all_services():
        manager.discovery.publish(service.description, category="travel")
    manager.discovery.publish(
        deployed.scenario.community.description, category="travel",
    )
    manager.discovery.publish(
        deployed.scenario.composite.description, category="composite",
    )
    stats = manager.discovery.registry.statistics()
    print(f"UDDI registry: {stats['businesses']} businesses, "
          f"{stats['services']} services, {stats['bindings']} bindings")
    print()

    print("=" * 68)
    print("SEARCH by service name: 'flight'")
    print("=" * 68)
    print(manager.discovery.search(service_name="flight").render())
    print()

    print("=" * 68)
    print("SEARCH by provider: 'EasyTrips'")
    print("=" * 68)
    print(manager.discovery.search(provider="EasyTrips").render())
    print()

    print("=" * 68)
    print("SEARCH by operation: 'bookAccommodation'")
    print("=" * 68)
    print(manager.discovery.search(operation="bookAccommodation").render())
    print()

    print("=" * 68)
    print("SERVICE DETAIL panel: TravelArrangement")
    print("=" * 68)
    listing = manager.discovery.service_detail("TravelArrangement")
    print(f"name        : {listing.name}")
    print(f"provider    : {listing.provider}")
    print(f"category    : {listing.category}")
    print(f"operations  : {', '.join(listing.operations)}")
    print(f"access point: {listing.access_point}")
    print(f"WSDL URL    : {listing.wsdl_url}")
    document = manager.discovery.fetch_wsdl("TravelArrangement")
    operation = document.operations[0]
    print(f"WSDL inputs : "
          f"{', '.join(name for name, _t in operation.inputs)}")
    print()

    print("=" * 68)
    print("EXECUTE — supply parameter values and press Run")
    print("=" * 68)
    client = manager.client("enduser", "end-host")
    result = manager.discovery.execute(
        client, "TravelArrangement", "arrangeTrip",
        {"customer": "Carol", "destination": "tokyo",
         "departure_date": "2026-09-10", "return_date": "2026-09-24"},
    )
    print("Execution Result panel:")
    print(f"  status: {result.status}")
    for key, value in sorted(result.outputs.items()):
        print(f"  {key}: {value}")
    assert result.ok


if __name__ == "__main__":
    main()
