#!/usr/bin/env python
"""Locating and executing services (paper §4, Figure 3).

Walks the Search panel flows on the v2 ``Platform`` API: search the
UDDI registry by provider, by service name and by operation; browse
providers -> services -> operations; view a service's detail
(WSDL-derived); then hit Execute on the travel composite, exactly as
the demo's end user does — with the ``locate()`` fast path visible at
the end.

Run:  python examples/locate_and_execute.py
"""

from repro import Platform
from repro.demo.travel import deploy_travel_scenario


def main() -> None:
    platform = Platform()

    # Providers deploy; then every service is published in the UDDI
    # registry (WSDL placed at a public URL + business/service/binding).
    deployed = deploy_travel_scenario(platform.deployer)
    for service in deployed.scenario.all_services():
        platform.discovery.publish(service.description, category="travel")
    platform.discovery.publish(
        deployed.scenario.community.description, category="travel",
    )
    platform.discovery.publish(
        deployed.scenario.composite.description, category="composite",
    )
    stats = platform.discovery.registry.statistics()
    print(f"UDDI registry: {stats['businesses']} businesses, "
          f"{stats['services']} services, {stats['bindings']} bindings")
    print()

    print("=" * 68)
    print("SEARCH by service name: 'flight'")
    print("=" * 68)
    print(platform.discovery.search(service_name="flight").render())
    print()

    print("=" * 68)
    print("SEARCH by provider: 'EasyTrips'")
    print("=" * 68)
    print(platform.discovery.search(provider="EasyTrips").render())
    print()

    print("=" * 68)
    print("SEARCH by operation: 'bookAccommodation'")
    print("=" * 68)
    print(platform.discovery.search(operation="bookAccommodation").render())
    print()

    print("=" * 68)
    print("SERVICE DETAIL panel: TravelArrangement")
    print("=" * 68)
    listing = platform.discovery.service_detail("TravelArrangement")
    print(f"name        : {listing.name}")
    print(f"provider    : {listing.provider}")
    print(f"category    : {listing.category}")
    print(f"operations  : {', '.join(listing.operations)}")
    print(f"access point: {listing.access_point}")
    print(f"WSDL URL    : {listing.wsdl_url}")
    document = platform.discovery.fetch_wsdl("TravelArrangement")
    operation = document.operations[0]
    print(f"WSDL inputs : "
          f"{', '.join(name for name, _t in operation.inputs)}")
    print()

    print("=" * 68)
    print("EXECUTE — locate a typed binding, then press Run")
    print("=" * 68)
    session = platform.session("enduser", "end-host")
    binding = platform.locate("TravelArrangement")   # SOAP/UDDI round trip
    result = session.execute(
        binding, "arrangeTrip",
        {"customer": "Carol", "destination": "tokyo",
         "departure_date": "2026-09-10", "return_date": "2026-09-24"},
    )
    print("Execution Result panel:")
    print(f"  status: {result.status}")
    for key, value in sorted(result.outputs.items()):
        print(f"  {key}: {value}")
    assert result.ok
    print()

    # Repeated locates ride the perf fast path (docs/PERF.md): the
    # second resolution is a generation-checked cache hit, no SOAP.
    platform.locate("TravelArrangement")
    cache = platform.discovery.locate_cache
    print(f"locate cache: {cache.stats.hits} hit(s), "
          f"{cache.stats.misses} miss(es), "
          f"hit rate {cache.stats.hit_rate():.0%}")


if __name__ == "__main__":
    main()
