#!/usr/bin/env python
"""Quickstart: compose two services and execute the composite, P2P-style.

Covers the minimal SELF-SERV loop:

1. implement two elementary services,
2. deploy them on their provider hosts,
3. draw a statechart wiring them into a composite service,
4. deploy the composite (routing tables generated + coordinators placed),
5. execute it from a client and read the result.

Run:  python examples/quickstart.py
"""

from repro import ServiceManager, SimTransport, StatechartBuilder
from repro.services.composite import CompositeService
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService, operation_handler


def make_quote_service() -> ElementaryService:
    """A currency-quote provider."""
    description = ServiceDescription("QuoteService", provider="FxCo")
    description.add_operation(OperationSpec(
        "quote",
        inputs=(Parameter("currency", ParameterType.STRING),),
        outputs=(Parameter("rate", ParameterType.FLOAT),),
    ))
    service = ElementaryService(description)

    @operation_handler
    def quote(currency):
        rates = {"EUR": 0.61, "USD": 0.66, "JPY": 97.1}
        return {"rate": rates.get(currency.upper(), 1.0)}

    service.bind("quote", quote)
    return service


def make_converter_service() -> ElementaryService:
    """A conversion provider that uses a rate someone else quoted."""
    description = ServiceDescription("ConverterService", provider="CalcCo")
    description.add_operation(OperationSpec(
        "convert",
        inputs=(Parameter("amount", ParameterType.FLOAT),
                Parameter("rate", ParameterType.FLOAT)),
        outputs=(Parameter("converted", ParameterType.FLOAT),),
    ))
    service = ElementaryService(description)

    @operation_handler
    def convert(amount, rate):
        return {"converted": round(amount * rate, 2)}

    service.bind("convert", convert)
    return service


def main() -> None:
    transport = SimTransport()
    manager = ServiceManager(transport)

    # 1-2. Providers register (deploy + publish) their services.
    manager.register_elementary(make_quote_service(), host="fxco-host")
    manager.register_elementary(make_converter_service(),
                                host="calcco-host")

    # 3. A composer draws the statechart: quote, then convert.
    chart = (
        StatechartBuilder("convertMoney")
        .initial()
        .task("Q", "QuoteService", "quote",
              inputs={"currency": "currency"},
              outputs={"rate": "rate"})
        .task("X", "ConverterService", "convert",
              inputs={"amount": "amount", "rate": "rate"},
              outputs={"converted": "converted"})
        .final()
        .chain("initial", "Q", "X", "final")
        .build()
    )
    composite = CompositeService(
        ServiceDescription("MoneyConverter", provider="DemoCorp")
    )
    composite.define_operation(
        OperationSpec(
            "convertMoney",
            inputs=(Parameter("currency", ParameterType.STRING),
                    Parameter("amount", ParameterType.FLOAT)),
            outputs=(Parameter("converted", ParameterType.FLOAT),
                     Parameter("rate", ParameterType.FLOAT)),
        ),
        chart,
    )

    # 4. Deploy: routing tables are generated from the statechart and one
    #    coordinator per state is installed on the provider hosts.
    deployment = manager.deploy_composite(composite, host="demo-host")
    print(deployment.describe())
    print()

    # 5. Execute from an end-user client.
    client = manager.client("quickstart-user", "laptop")
    result = client.execute(
        *deployment.address, "convertMoney",
        {"currency": "EUR", "amount": 250.0},
    )
    print(f"status    : {result.status}")
    print(f"outputs   : {result.outputs}")
    print(f"messages  : {transport.stats.sent_total} total, "
          f"{transport.stats.remote_total} across hosts")
    assert result.ok and result.outputs["converted"] == 152.5


if __name__ == "__main__":
    main()
