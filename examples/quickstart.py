#!/usr/bin/env python
"""Quickstart: compose two services and execute the composite, P2P-style.

Covers the minimal SELF-SERV loop on the v2 ``Platform`` API:

1. implement two elementary services,
2. register them fluently on their provider hosts,
3. draw a statechart on a composition canvas wiring them together,
4. deploy the composite (routing tables generated + coordinators placed),
5. submit an execution from a session, hold the handle, read the result,
6. fan a batch of executions out concurrently with submit_many/gather.

Run:  python examples/quickstart.py
"""

from repro import Platform
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService, operation_handler


def make_quote_service() -> ElementaryService:
    """A currency-quote provider."""
    description = ServiceDescription("QuoteService", provider="FxCo")
    description.add_operation(OperationSpec(
        "quote",
        inputs=(Parameter("currency", ParameterType.STRING),),
        outputs=(Parameter("rate", ParameterType.FLOAT),),
    ))
    service = ElementaryService(description)

    @operation_handler
    def quote(currency):
        rates = {"EUR": 0.61, "USD": 0.66, "JPY": 97.1}
        return {"rate": rates.get(currency.upper(), 1.0)}

    service.bind("quote", quote)
    return service


def make_converter_service() -> ElementaryService:
    """A conversion provider that uses a rate someone else quoted."""
    description = ServiceDescription("ConverterService", provider="CalcCo")
    description.add_operation(OperationSpec(
        "convert",
        inputs=(Parameter("amount", ParameterType.FLOAT),
                Parameter("rate", ParameterType.FLOAT)),
        outputs=(Parameter("converted", ParameterType.FLOAT),),
    ))
    service = ElementaryService(description)

    @operation_handler
    def convert(amount, rate):
        return {"converted": round(amount * rate, 2)}

    service.bind("convert", convert)
    return service


def main() -> None:
    platform = Platform()  # deterministic simulated network

    # 1-2. Providers register (deploy + publish) their services.
    platform.provider("fxco-host").elementary(make_quote_service())
    platform.provider("calcco-host").elementary(make_converter_service())

    # 3. A composer opens a composition and draws the statechart on its
    #    canvas: quote, then convert.
    converter = platform.compose("MoneyConverter", provider="DemoCorp")
    canvas = converter.operation(
        "convertMoney",
        inputs=[("currency", ParameterType.STRING),
                ("amount", ParameterType.FLOAT)],
        outputs=[("converted", ParameterType.FLOAT),
                 ("rate", ParameterType.FLOAT)],
    )
    (canvas.initial()
           .task("Q", "QuoteService", "quote",
                 inputs={"currency": "currency"},
                 outputs={"rate": "rate"})
           .task("X", "ConverterService", "convert",
                 inputs={"amount": "amount", "rate": "rate"},
                 outputs={"converted": "converted"})
           .final()
           .chain("initial", "Q", "X", "final"))

    # 4. Deploy: routing tables are generated from the statechart and one
    #    coordinator per state is installed on the provider hosts.
    deployment = converter.deploy(host="demo-host")
    print(deployment.describe())
    print()

    # 5. Execute from an end-user session: submit returns a handle
    #    immediately; result() blocks only when you ask for the outcome.
    session = platform.session("quickstart-user", "laptop")
    handle = session.submit("MoneyConverter", "convertMoney",
                            {"currency": "EUR", "amount": 250.0})
    result = handle.result()
    print(f"status    : {result.status}")
    print(f"outputs   : {result.outputs}")
    print(f"hops      : {len(handle.trace().events)} traced messages "
          f"across {len(handle.trace().hosts_touched())} hosts")
    assert result.ok and result.outputs["converted"] == 152.5

    # 6. Batch fan-out: all three conversions overlap on the network —
    #    gather blocks once and returns results in submission order.
    binding = platform.locate("MoneyConverter")
    handles = session.submit_many([
        (binding, "convertMoney", {"currency": code, "amount": 100.0})
        for code in ("EUR", "USD", "JPY")
    ])
    batch = session.gather(handles)
    for code, res in zip(("EUR", "USD", "JPY"), batch):
        print(f"100.0 -> {res.outputs['converted']:>8} {code}")
    assert all(res.ok for res in batch)

    print(f"messages  : {platform.transport.stats.sent_total} total, "
          f"{platform.transport.stats.remote_total} across hosts")


if __name__ == "__main__":
    main()
