#!/usr/bin/env python
"""A tour of the SELF-SERV architecture (paper Figure 1).

Walks every box of the architecture diagram on the v2 ``Platform``
facade: its three modules (discovery engine, editor, deployer), the
UDDI registry, and the pool of services (elementary services, a
community, and a composite) — showing the artefact each step produces.

Run:  python examples/architecture_tour.py
"""

from repro import Platform
from repro.demo.providers import (
    make_attractions_search,
    make_car_rental,
)
from repro.services.description import ParameterType
from repro.xmlio import pretty_xml


def main() -> None:
    platform = Platform()  # deterministic simulated network

    print("┌─ SELF-SERV Platform ─────────────────────────────────────┐")
    print("│  service discovery engine · service editor · deployer   │")
    print("└──────────────────────────────────────────────────────────┘")
    print()

    # --- Pool of services: providers register elementary services -----
    print("[pool] providers deploy + publish elementary services")
    (platform.provider("host-sightseer")
             .elementary(make_attractions_search(), category="travel"))
    (platform.provider("host-roadrunner")
             .elementary(make_car_rental(), category="travel"))
    for name in ("AttractionsSearch", "CarRental"):
        listing = platform.discovery.service_detail(name)
        print(f"  {listing.name:<18} provider={listing.provider:<11} "
              f"access={listing.access_point}")
    print()

    # --- Service editor: a composer defines a composite ----------------
    print("[editor] composer draws a 'day trip' composite")
    trip = platform.compose("DayTrip", provider="MicroTours",
                            documentation="attractions then a car")
    canvas = trip.operation(
        "plan",
        inputs=["customer", "destination"],
        outputs=["major_attraction", ("car_ref", ParameterType.STRING)],
    )
    (canvas.initial()
           .task("AS", "AttractionsSearch", "searchAttractions",
                 inputs={"destination": "destination"},
                 outputs={"major_attraction": "major_attraction"})
           .task("CR", "CarRental", "rentCar",
                 inputs={"customer": "customer",
                         "destination": "destination"},
                 outputs={"car_ref": "car_ref"})
           .final()
           .chain("initial", "AS", "CR", "final"))
    errors, warnings = trip.check()
    print(f"  editor validation: {len(errors)} errors, "
          f"{len(warnings)} warnings")
    print("  statechart:")
    for line in trip.draft().render("plan").splitlines():
        print(f"    {line}")
    print()

    # --- Service deployer: routing tables + coordinators ---------------
    print("[deployer] generating routing tables, installing coordinators")
    deployment = trip.deploy(host="host-microtours")
    for line in deployment.describe().splitlines():
        print(f"  {line}")
    plan = deployment.plans["plan"]
    if plan is not None:
        for line in plan.describe().splitlines():
            print(f"  {line}")
    print()
    print("  routing-table XML uploaded to each host (excerpt):")
    xml_text = pretty_xml(deployment.tables_xml("plan"))
    for line in xml_text.splitlines()[:12]:
        print(f"    {line}")
    print("    ...")
    print()

    # --- UDDI registry ----------------------------------------------------
    stats = platform.discovery.registry.statistics()
    print(f"[registry] UDDI now holds {stats['businesses']} businesses, "
          f"{stats['services']} services, {stats['bindings']} bindings")
    print()

    # --- End user ---------------------------------------------------------
    print("[end user] locate and execute the composite")
    session = platform.session("tourist", "tourist-phone")
    binding = platform.locate("DayTrip")
    result = session.execute(binding, "plan",
                             {"customer": "Tim", "destination": "cairns"})
    print(f"  status : {result.status}")
    print(f"  outputs: {result.outputs}")
    assert result.ok


if __name__ == "__main__":
    main()
