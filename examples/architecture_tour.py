#!/usr/bin/env python
"""A tour of the SELF-SERV architecture (paper Figure 1).

Walks every box of the architecture diagram: the Service Manager's three
modules (discovery engine, editor, deployer), the UDDI registry, and the
pool of services (elementary services, a community, and a composite) —
showing the artefact each step produces.

Run:  python examples/architecture_tour.py
"""

from repro import ServiceManager, SimTransport
from repro.demo.providers import (
    make_attractions_search,
    make_car_rental,
)
from repro.services.description import ParameterType
from repro.xmlio import pretty_xml


def main() -> None:
    transport = SimTransport()
    manager = ServiceManager(transport)

    print("┌─ SELF-SERV Service Manager ──────────────────────────────┐")
    print("│  service discovery engine · service editor · deployer   │")
    print("└──────────────────────────────────────────────────────────┘")
    print()

    # --- Pool of services: providers register elementary services -----
    print("[pool] providers deploy + publish elementary services")
    attractions = make_attractions_search()
    cars = make_car_rental()
    manager.register_elementary(attractions, "host-sightseer",
                                category="travel")
    manager.register_elementary(cars, "host-roadrunner",
                                category="travel")
    for name in ("AttractionsSearch", "CarRental"):
        listing = manager.discovery.service_detail(name)
        print(f"  {listing.name:<18} provider={listing.provider:<11} "
              f"access={listing.access_point}")
    print()

    # --- Service editor: a composer defines a composite ----------------
    print("[editor] composer draws a 'day trip' composite")
    draft = manager.new_draft("DayTrip", provider="MicroTours",
                              documentation="attractions then a car")
    canvas = draft.operation(
        "plan",
        inputs=["customer", "destination"],
        outputs=["major_attraction", ("car_ref", ParameterType.STRING)],
    )
    (canvas.initial()
           .task("AS", "AttractionsSearch", "searchAttractions",
                 inputs={"destination": "destination"},
                 outputs={"major_attraction": "major_attraction"})
           .task("CR", "CarRental", "rentCar",
                 inputs={"customer": "customer",
                         "destination": "destination"},
                 outputs={"car_ref": "car_ref"})
           .final()
           .chain("initial", "AS", "CR", "final"))
    errors, warnings = draft.check()
    print(f"  editor validation: {len(errors)} errors, "
          f"{len(warnings)} warnings")
    print("  statechart:")
    for line in draft.render("plan").splitlines():
        print(f"    {line}")
    print()

    # --- Service deployer: routing tables + coordinators ---------------
    print("[deployer] generating routing tables, installing coordinators")
    deployment = manager.deploy_composite(draft, host="host-microtours")
    for line in deployment.describe().splitlines():
        print(f"  {line}")
    print()
    print("  routing-table XML uploaded to each host (excerpt):")
    xml_text = pretty_xml(deployment.tables_xml("plan"))
    for line in xml_text.splitlines()[:12]:
        print(f"    {line}")
    print("    ...")
    print()

    # --- UDDI registry ----------------------------------------------------
    stats = manager.discovery.registry.statistics()
    print(f"[registry] UDDI now holds {stats['businesses']} businesses, "
          f"{stats['services']} services, {stats['bindings']} bindings")
    print()

    # --- End user ---------------------------------------------------------
    print("[end user] locate and execute the composite")
    result = manager.locate_and_execute(
        "tourist", "tourist-phone", "DayTrip", "plan",
        {"customer": "Tim", "destination": "cairns"},
    )
    print(f"  status : {result.status}")
    print(f"  outputs: {result.outputs}")
    assert result.ok


if __name__ == "__main__":
    main()
