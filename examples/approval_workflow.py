#!/usr/bin/env python
"""ECA events: a human-in-the-loop approval workflow.

SELF-SERV operations carry "consumed and produced events"; a
transition's ECA rule may wait for an event.  This example composes a
purchasing workflow where the execution *pauses* after quoting until a
manager signals ``approve`` or ``reject`` — the E part of
Event-Condition-Action — delivered through the v2 handle API
(``handle.signal``), with the monitoring tracer watching the execution
while it waits.

Run:  python examples/approval_workflow.py
"""

from repro import Platform, StatechartBuilder
from repro.services.composite import CompositeService
from repro.services.description import (
    OperationSpec,
    Parameter,
    ParameterType,
    ServiceDescription,
)
from repro.services.elementary import ElementaryService, operation_handler


def make_quoting_service() -> ElementaryService:
    description = ServiceDescription("QuoteDesk", provider="SupplyCo")
    description.add_operation(OperationSpec(
        "quote",
        inputs=(Parameter("item", ParameterType.STRING),
                Parameter("quantity", ParameterType.INT)),
        outputs=(Parameter("quote_ref", ParameterType.STRING),
                 Parameter("total", ParameterType.FLOAT)),
    ))
    service = ElementaryService(description)

    @operation_handler
    def quote(item, quantity):
        unit_prices = {"laptop": 1400.0, "chair": 230.0, "desk": 610.0}
        total = unit_prices.get(item, 99.0) * quantity
        return {"quote_ref": f"Q-{abs(hash((item, quantity))) % 10_000}",
                "total": total}

    service.bind("quote", quote)
    return service


def make_ordering_service() -> ElementaryService:
    description = ServiceDescription("OrderDesk", provider="SupplyCo")
    description.add_operation(OperationSpec(
        "place",
        inputs=(Parameter("quote_ref", ParameterType.STRING),),
        outputs=(Parameter("order_ref", ParameterType.STRING),),
    ))
    service = ElementaryService(description)

    @operation_handler
    def place(quote_ref):
        return {"order_ref": quote_ref.replace("Q-", "ORD-")}

    service.bind("place", place)
    return service


def build_workflow() -> CompositeService:
    """quote -> wait for manager event -> order (approved & cheap enough)
    or finish (rejected / too expensive even when approved)."""
    chart = (
        StatechartBuilder("purchase")
        .initial()
        .task("quote", "QuoteDesk", "quote",
              inputs={"item": "item", "quantity": "quantity"},
              outputs={"quote_ref": "quote_ref", "total": "total"})
        .task("order", "OrderDesk", "place",
              inputs={"quote_ref": "quote_ref"},
              outputs={"order_ref": "order_ref"})
        .final()
        .chain("initial", "quote")
        .arc("quote", "order", event="approve",
             condition="total <= budget")
        .arc("quote", "final", event="approve",
             condition="total > budget")
        .arc("quote", "final", event="reject")
        .arc("order", "final")
        .build()
    )
    composite = CompositeService(
        ServiceDescription("Purchasing", provider="DemoCorp")
    )
    composite.define_operation(
        OperationSpec(
            "purchase",
            inputs=(Parameter("item", ParameterType.STRING),
                    Parameter("quantity", ParameterType.INT)),
            outputs=(Parameter("quote_ref", ParameterType.STRING),
                     Parameter("total", ParameterType.FLOAT),
                     Parameter("order_ref", ParameterType.STRING,
                               required=False)),
        ),
        chart,
    )
    return composite


def run_case(platform, deployment, session, label, item, quantity,
             event, payload):
    handle = session.submit(deployment, "purchase",
                            {"item": item, "quantity": quantity})
    platform.transport.run_until_idle()    # quote runs, then waits
    print(f"{label}: quoted, execution parked awaiting the manager...")
    handle.signal(event, payload)          # the manager's decision
    result = handle.result()
    order = result.outputs.get("order_ref") or "(no order placed)"
    print(f"  manager said {event!r} {payload} -> {result.status}; "
          f"total={result.outputs['total']}, order={order}")
    print()
    return handle, result


def main() -> None:
    platform = Platform()
    platform.provider("supplyco-quotes").elementary(make_quoting_service())
    platform.provider("supplyco-orders").elementary(make_ordering_service())
    deployment = platform.deploy_composite(build_workflow(), "demo-host")
    session = platform.session("requester", "laptop")

    first_handle, approved = run_case(
        platform, deployment, session,
        "case 1 (approved, within budget)",
        "chair", 4, "approve", {"budget": 2000.0})
    assert approved.outputs["order_ref"]

    _, too_dear = run_case(platform, deployment, session,
                           "case 2 (approved, but over budget)",
                           "laptop", 10, "approve", {"budget": 2000.0})
    assert too_dear.outputs["order_ref"] is None

    _, rejected = run_case(platform, deployment, session,
                           "case 3 (rejected outright)",
                           "desk", 2, "reject", {})
    assert rejected.outputs["order_ref"] is None

    print("monitoring view of case 1 (note the gap at the event wait):")
    print(first_handle.trace().render())


if __name__ == "__main__":
    main()
