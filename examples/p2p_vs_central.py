#!/usr/bin/env python
"""Peer-to-peer orchestration vs. a centralised engine, measured.

The paper's §1 motivates decentralised execution with the scalability
and availability problems of centralised coordination.  This example
runs the same synthetic composite on both architectures over the same
simulated provider pool and prints message load, load concentration and
latency side by side.

Run:  python examples/p2p_vs_central.py
"""

from repro.workload.generator import make_chain_workload
from repro.workload.harness import (
    build_sim_environment,
    composite_for_workload,
    deploy_workload_services,
    run_central,
    run_p2p,
)


def main() -> None:
    workload = make_chain_workload(tasks=10, seed=42,
                                   service_latency_ms=20.0)
    env = build_sim_environment(seed=42)
    deploy_workload_services(env, workload)
    composite = composite_for_workload(workload)
    requests = [dict(workload.request_args) for _ in range(20)]

    p2p = run_p2p(env, composite, requests)
    central = run_central(env, composite, requests)

    print(f"workload: {workload.task_count}-task pipeline, "
          f"{len(requests)} concurrent executions, one host per provider")
    print()
    header = (f"{'metric':<28} {'P2P (SELF-SERV)':>18} "
              f"{'centralised':>14}")
    print(header)
    print("-" * len(header))
    rows = [
        ("successful executions",
         p2p.successes, central.successes),
        ("messages total",
         p2p.messages_total, central.messages_total),
        ("messages crossing hosts",
         p2p.messages_remote, central.messages_remote),
        ("mean latency (ms)",
         round(p2p.mean_latency_ms, 1), round(central.mean_latency_ms, 1)),
        ("peak host load (msgs)",
         p2p.peak_node_load, central.peak_node_load),
        ("load concentration",
         round(p2p.load_concentration, 3),
         round(central.load_concentration, 3)),
    ]
    for label, a, b in rows:
        print(f"{label:<28} {a!s:>18} {b!s:>14}")

    print()
    print(f"busiest host under P2P       : {p2p.peak_node}")
    print(f"busiest host under central   : {central.peak_node}")
    print()
    print("Reading: the centralised engine touches every message "
          "(concentration → 1.0), while P2P spreads coordination across "
          "provider hosts and completes each execution with fewer "
          "cross-host hops.")
    assert central.load_concentration > p2p.load_concentration


if __name__ == "__main__":
    main()
