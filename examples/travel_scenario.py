#!/usr/bin/env python
"""The paper's demo scenario (§4, Figure 2), end to end.

Reproduces the demo walkthrough: defining the travel composite in the
editor (statechart + generated XML document), deploying it (routing
tables uploaded to provider hosts), and executing it for destinations
that exercise all four control-flow paths:

* sydney  — domestic flight, attraction near the hotel (no car rental)
* cairns  — domestic flight, Great Barrier Reef is far (car rental!)
* paris   — international arrangements incl. insurance, near (no car)
* tokyo   — international arrangements incl. insurance, far (car!)

Run:  python examples/travel_scenario.py
"""

from repro import ServiceManager, SimTransport
from repro.editor.rendering import render_statechart
from repro.demo.travel import (
    build_travel_chart,
    deploy_travel_scenario,
)
from repro.editor.document import composite_to_xml
from repro.xmlio import pretty_xml


def main() -> None:
    transport = SimTransport()
    manager = ServiceManager(transport)

    print("=" * 72)
    print("FIGURE 2 — the travel composite's statechart (editor canvas)")
    print("=" * 72)
    print(render_statechart(build_travel_chart()))
    print()

    deployed = deploy_travel_scenario(manager.deployer)

    print("=" * 72)
    print("FIGURE 2 — the generated XML document (editor XML panel, head)")
    print("=" * 72)
    xml_text = pretty_xml(
        composite_to_xml(deployed.scenario.composite)
    )
    print("\n".join(xml_text.splitlines()[:30]))
    print(f"... ({len(xml_text.splitlines())} lines total)")
    print()

    print("=" * 72)
    print("DEPLOYMENT — routing tables uploaded, coordinators installed")
    print("=" * 72)
    print(deployed.deployment.describe())
    print()
    tables = deployed.deployment.tables["arrangeTrip"]
    print(f"routing tables generated: {len(tables)}")
    print("example routing table (the AND-join after bookings/search):")
    print(tables["trip/__join"].describe())
    print()

    print("=" * 72)
    print("EXECUTION — all four control-flow paths")
    print("=" * 72)
    client = manager.client("traveller", "traveller-laptop")
    header = (f"{'destination':<12} {'status':<8} {'flight':<12} "
              f"{'insurance':<11} {'car rental':<11} {'hotel'}")
    print(header)
    print("-" * len(header))
    for destination in ("sydney", "cairns", "paris", "tokyo"):
        result = client.execute(
            *deployed.address, "arrangeTrip",
            {"customer": "Alice", "destination": destination,
             "departure_date": "2026-07-01", "return_date": "2026-07-10"},
        )
        outputs = result.outputs
        print(f"{destination:<12} {result.status:<8} "
              f"{(outputs.get('flight_ref') or '-'):<12} "
              f"{(outputs.get('insurance_ref') or '-'):<11} "
              f"{(outputs.get('car_ref') or '-'):<11} "
              f"{outputs.get('accommodation', {}).get('name', '-')}")
        assert result.ok

    print()
    stats = transport.stats
    print(f"messages exchanged: {stats.sent_total} "
          f"({stats.remote_total} crossing hosts); peak host load: "
          f"{stats.peak_node_load()[0]} with "
          f"{stats.peak_node_load()[1]} messages")


if __name__ == "__main__":
    main()
