#!/usr/bin/env python
"""The paper's demo scenario (§4, Figure 2), end to end on the v2 API.

Reproduces the demo walkthrough: defining the travel composite in the
editor (statechart + generated XML document), deploying it (routing
tables uploaded to provider hosts), and executing it for destinations
that exercise all four control-flow paths:

* sydney  — domestic flight, attraction near the hotel (no car rental)
* cairns  — domestic flight, Great Barrier Reef is far (car rental!)
* paris   — international arrangements incl. insurance, near (no car)
* tokyo   — international arrangements incl. insurance, far (car!)

The executions are submitted as one batch: all four trips travel the
peer-to-peer network concurrently and ``gather`` collects the results in
submission order.

Run:  python examples/travel_scenario.py
"""

from repro import Platform
from repro.editor.rendering import render_statechart
from repro.demo.travel import (
    build_travel_chart,
    deploy_travel_scenario,
)
from repro.editor.document import composite_to_xml
from repro.xmlio import pretty_xml

DESTINATIONS = ("sydney", "cairns", "paris", "tokyo")


def main() -> None:
    platform = Platform()

    print("=" * 72)
    print("FIGURE 2 — the travel composite's statechart (editor canvas)")
    print("=" * 72)
    print(render_statechart(build_travel_chart()))
    print()

    deployed = deploy_travel_scenario(platform.deployer)

    print("=" * 72)
    print("FIGURE 2 — the generated XML document (editor XML panel, head)")
    print("=" * 72)
    xml_text = pretty_xml(
        composite_to_xml(deployed.scenario.composite)
    )
    print("\n".join(xml_text.splitlines()[:30]))
    print(f"... ({len(xml_text.splitlines())} lines total)")
    print()

    print("=" * 72)
    print("DEPLOYMENT — routing tables uploaded, coordinators installed")
    print("=" * 72)
    print(deployed.deployment.describe())
    print()
    tables = deployed.deployment.tables["arrangeTrip"]
    print(f"routing tables generated: {len(tables)}")
    print("example routing table (the AND-join after bookings/search):")
    print(tables["trip/__join"].describe())
    print()

    print("=" * 72)
    print("EXECUTION — all four control-flow paths, one concurrent batch")
    print("=" * 72)
    session = platform.session("traveller", "traveller-laptop")
    handles = session.submit_many([
        (deployed.address, "arrangeTrip",
         {"customer": "Alice", "destination": destination,
          "departure_date": "2026-07-01", "return_date": "2026-07-10"})
        for destination in DESTINATIONS
    ])
    results = session.gather(handles)

    header = (f"{'destination':<12} {'status':<8} {'flight':<12} "
              f"{'insurance':<11} {'car rental':<11} {'hotel'}")
    print(header)
    print("-" * len(header))
    for destination, result in zip(DESTINATIONS, results):
        outputs = result.outputs
        print(f"{destination:<12} {result.status:<8} "
              f"{(outputs.get('flight_ref') or '-'):<12} "
              f"{(outputs.get('insurance_ref') or '-'):<11} "
              f"{(outputs.get('car_ref') or '-'):<11} "
              f"{outputs.get('accommodation', {}).get('name', '-')}")
        assert result.ok

    print()
    print("one execution under the monitoring tap (first trip):")
    timeline = handles[0].trace()
    print(f"  services invoked: {', '.join(timeline.services_invoked())}")
    print(f"  hosts touched   : {len(timeline.hosts_touched())}")
    print()
    stats = platform.transport.stats
    print(f"messages exchanged: {stats.sent_total} "
          f"({stats.remote_total} crossing hosts); peak host load: "
          f"{stats.peak_node_load()[0]} with "
          f"{stats.peak_node_load()[1]} messages")


if __name__ == "__main__":
    main()
