"""Setup shim.

Kept alongside pyproject.toml so the package installs in offline
environments lacking the ``wheel`` package (``pip install -e .`` falls
back to ``setup.py develop`` there).
"""
from setuptools import setup

setup()
